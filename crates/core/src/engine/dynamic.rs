//! The dynamic-scenario engine: arrivals, completions, node churn, and
//! time-varying speeds on top of the shared count-based round kernel.
//!
//! Every static engine runs a fixed instance to convergence; the paper's
//! motivating setting (large heterogeneous compute networks) is a
//! *stream*. [`DynamicSim`] keeps the sharded kernel of
//! [`kernel`](crate::engine::kernel) as the migration engine — one
//! multinomial per `(node, class)`, byte-identical at any `--threads` —
//! and injects events **between** rounds directly into the count-based
//! class state:
//!
//! * **arrivals** ([`ArrivalProcess`]) — a Poisson or batch total per
//!   round, placed uniformly over the live nodes (each arrival is an
//!   independent uniform choice; the injection samples the equivalent
//!   multinomial via chained conditional binomials, see the χ² test);
//! * **completions** ([`CompletionProcess`]) — rate-based (each task
//!   completes with probability `μ` per round, a binomial per occupied
//!   `(node, class)` cell) or count-based (exactly `c` tasks per round,
//!   apportioned over cells proportionally to their counts by largest
//!   remainder — deterministic);
//! * **churn** ([`ChurnProcess`]) — per round every live node leaves and
//!   every dead node rejoins with probability `p`; a leaving node's tasks
//!   re-scatter uniformly over its live neighbors (falling back to the
//!   lowest-index live node if it has none) and the engine rebuilds the
//!   CSR neighbor structure as the subgraph induced on the live set (dead
//!   nodes stay in the index space with degree 0, so the kernel's flat
//!   count layout never changes shape);
//! * **speed dynamics** ([`SpeedDynamics`]) — geometric drift, a one-round
//!   shock, or tauray-style feedback estimation where the kernel sees a
//!   per-round blended *estimate* `ŝ ← ŝ + η·(s − ŝ)` instead of the true
//!   speed. The kernel accepts the updated vector per call without
//!   re-allocating any scratch, and `α` re-resolves against the current
//!   speeds so `p_ij ≤ 1/4` keeps holding as they move.
//!
//! # Determinism
//!
//! The kernel draws from the sharded streams
//! `derive_seed_sharded(seed, round, 0, shard)`. Event sampling extends
//! the same derivation along the *stream* axis: arrivals draw from the
//! unsharded `derive_seed(seed, round, ARRIVAL_STREAM)`, completions,
//! churn, and speed updates from their own stream constants. Since the
//! sharded derivation mixes the shard through one extra SplitMix64
//! finalization, sharded and unsharded consumers of the same
//! `(seed, round)` pair never alias — the event streams are independent
//! of every kernel shard by construction. Events are injected on one
//! thread in fixed node order, so the whole trajectory (kernel rounds
//! *and* events) is a pure function of the master seed, independent of
//! `--threads`.

use crate::engine::kernel::{CountKernel, OwnWeightThreshold, RelaxedThreshold};
use crate::engine::sampling::{sample_binomial, sample_multinomial, sample_poisson};
use crate::engine::weighted_fast::ClassCountState;
use crate::equilibrium::{self, Threshold};
use crate::model::{SpeedVector, System};
use crate::protocol::Alpha;
use crate::rng::rng_for;
use rand::Rng;
use slb_graphs::Graph;

/// RNG stream of the arrival totals and their placement (the kernel owns
/// [`streams::round::KERNEL`](crate::rng::streams::round::KERNEL) via the
/// sharded derivation). Defined in the central registry
/// [`crate::rng::streams`]; re-exported here for the engine's callers.
pub use crate::rng::streams::round::ARRIVAL as ARRIVAL_STREAM;
/// RNG stream of churn toggles and orphan re-scattering (see
/// [`crate::rng::streams`]).
pub use crate::rng::streams::round::CHURN as CHURN_STREAM;
/// RNG stream of rate-based completion draws (see [`crate::rng::streams`]).
pub use crate::rng::streams::round::COMPLETION as COMPLETION_STREAM;
/// RNG stream of speed drift/shock draws (see [`crate::rng::streams`]).
pub use crate::rng::streams::round::SPEED as SPEED_STREAM;

/// How new tasks enter the system, per round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// `Poisson(rate · live nodes)` arrivals per round, placed uniformly
    /// over the live nodes (`rate` is the expected arrivals per node per
    /// round).
    Poisson {
        /// Expected arrivals per live node per round.
        rate: f64,
    },
    /// `size` tasks every `period` rounds (first batch at round 0),
    /// placed uniformly over the live nodes.
    Batch {
        /// Tasks per batch.
        size: u64,
        /// Rounds between batches.
        period: u64,
    },
}

/// How tasks leave the system, per round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompletionProcess {
    /// Every task completes independently with probability `mu` per round
    /// (one binomial per occupied `(node, class)` cell).
    Rate {
        /// Per-task per-round completion probability.
        mu: f64,
    },
    /// Exactly `count` tasks complete per round (capped at the current
    /// population), apportioned over occupied cells proportionally to
    /// their counts by the largest-remainder method — fully
    /// deterministic.
    PerRound {
        /// Tasks completed per round.
        count: u64,
    },
}

/// Node join/leave dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    /// Per-round probability that a live node leaves (and that a dead
    /// node rejoins). The engine never lets the last live node leave.
    pub rate: f64,
}

/// Time variation of the speed vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedDynamics {
    /// Geometric random walk: each round every node's true speed is
    /// multiplied by `exp(sigma·z)` with `z ~ N(0,1)`, clamped to a fixed
    /// band around the initial speeds.
    Drift {
        /// Log-scale per-round step size.
        sigma: f64,
    },
    /// At round `round`, each node's true speed is quadrupled with
    /// probability `fraction` — a one-shot capacity shock whose recovery
    /// the steady-state metrics measure.
    Shock {
        /// The round the shock fires at.
        round: u64,
        /// Expected fraction of nodes hit.
        fraction: f64,
    },
    /// tauray-style feedback estimation: speeds are constant but the
    /// protocol only sees a per-round blended estimate
    /// `ŝ ← ŝ + eta·(s − ŝ)`, started from the uninformed all-ones guess.
    Feedback {
        /// Blend factor per round, in `(0, 1]`.
        eta: f64,
    },
}

/// The event layer of one dynamic run; `Default` is the fully static
/// configuration (under which [`DynamicSim`] reproduces the static
/// engines' trajectories bit for bit).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DynamicConfig {
    /// Task arrivals, if any.
    pub arrivals: Option<ArrivalProcess>,
    /// Task completions, if any.
    pub completions: Option<CompletionProcess>,
    /// Node churn, if any.
    pub churn: Option<ChurnProcess>,
    /// Speed dynamics, if any.
    pub speed_dynamics: Option<SpeedDynamics>,
}

impl DynamicConfig {
    /// Whether any event process is configured.
    pub fn is_dynamic(&self) -> bool {
        self.arrivals.is_some()
            || self.completions.is_some()
            || self.churn.is_some()
            || self.speed_dynamics.is_some()
    }
}

/// The kernel threshold rule a dynamic run migrates under: `Relaxed` is
/// the weight-independent `θ = 1` of Algorithms 1/2, `OwnWeight` the
/// `θ = w` of the \[6\] baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicRule {
    /// `θ = 1` (Algorithms 1 and 2).
    Relaxed,
    /// `θ = w` (the \[6\] baseline).
    OwnWeight,
}

/// What one dynamic step did: the kernel round's totals plus the event
/// totals injected before it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DynamicStepReport {
    /// Tasks that migrated in the kernel round.
    pub migrations: u64,
    /// Total weight that migrated.
    pub migrated_weight: f64,
    /// Tasks that arrived this step.
    pub arrived: u64,
    /// Tasks that completed this step.
    pub completed: u64,
    /// Nodes that left this step.
    pub left: u64,
    /// Nodes that rejoined this step.
    pub joined: u64,
}

/// A dynamic simulation: the sharded count kernel plus the between-round
/// event layer of [`DynamicConfig`].
///
/// Unlike the static engines, the simulator *owns* its graph and speeds
/// (churn remaps the topology, speed dynamics move the vector) and does
/// **not** require the class state's population to match the seeding
/// system's task count — arrivals and completions decouple `m` from the
/// instance. Dead nodes keep their slot in every per-node array (degree 0
/// in the live graph, zero tasks), so the kernel's node-major count
/// layout is stable across churn.
#[derive(Debug)]
pub struct DynamicSim {
    base_graph: Graph,
    graph: Graph,
    alive: Vec<bool>,
    live_count: usize,
    /// True speeds (drift and shocks mutate these).
    true_speeds: Vec<f64>,
    /// What the kernel sees (feedback estimates, otherwise = true).
    effective: Vec<f64>,
    speeds: SpeedVector,
    drift_floor: f64,
    drift_cap: f64,
    state: ClassCountState,
    /// Arrival class mix: the initial global class distribution.
    class_mix: Vec<f64>,
    rule: DynamicRule,
    alpha_spec: Alpha,
    alpha: f64,
    cfg: DynamicConfig,
    kernel: CountKernel,
    seed: u64,
    round: u64,
    threads: usize,
    scratch_counts: Vec<u64>,
}

impl DynamicSim {
    /// Builds a dynamic simulation seeded from `system`'s graph and
    /// speeds, starting at `state`.
    ///
    /// # Panics
    ///
    /// If the state's node count differs from the graph's, or if
    /// `alpha` is [`Alpha::Exact`] while speed dynamics are configured
    /// (a drifting vector has no granularity to resolve `α` against).
    pub fn new(
        system: &System,
        rule: DynamicRule,
        alpha: Alpha,
        state: ClassCountState,
        cfg: DynamicConfig,
        seed: u64,
    ) -> Self {
        let graph = system.graph().clone();
        let n = graph.node_count();
        assert_eq!(state.nodes(), n, "state/graph node count mismatch");
        assert!(
            !(cfg.speed_dynamics.is_some() && alpha == Alpha::Exact),
            "Alpha::Exact requires a fixed speed granularity; \
             use Approximate (or Custom) under speed dynamics"
        );
        let true_speeds = system.speeds().as_slice().to_vec();
        // Feedback runs start from the uninformed all-ones estimate; every
        // other mode sees the true speeds.
        let effective = match cfg.speed_dynamics {
            Some(SpeedDynamics::Feedback { .. }) => vec![1.0; n],
            _ => true_speeds.clone(),
        };
        let speeds = SpeedVector::new(effective.clone()).expect("positive finite speeds");
        let resolved = alpha.resolve(&speeds);
        let s_min = true_speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let s_max = true_speeds.iter().cloned().fold(0.0f64, f64::max);
        let total = state.total_tasks();
        let k = state.classes();
        let class_mix: Vec<f64> = if total == 0 {
            vec![1.0 / k as f64; k]
        } else {
            (0..k)
                .map(|c| state.class_total(c) as f64 / total as f64)
                .collect()
        };
        DynamicSim {
            base_graph: graph.clone(),
            graph,
            alive: vec![true; n],
            live_count: n,
            true_speeds,
            effective,
            speeds,
            drift_floor: (s_min / 16.0).max(1e-9),
            drift_cap: s_max * 16.0,
            state,
            class_mix,
            rule,
            alpha_spec: alpha,
            alpha: resolved,
            cfg,
            kernel: CountKernel::new(),
            seed,
            round: 0,
            threads: 1,
            scratch_counts: Vec::new(),
        }
    }

    /// Caps the kernel's worker fan-out (no effect on the trajectory).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread cap must be at least 1");
        self.threads = threads;
        self
    }

    /// The current class state.
    pub fn state(&self) -> &ClassCountState {
        &self.state
    }

    /// The event configuration this run was built with.
    pub fn config(&self) -> &DynamicConfig {
        &self.cfg
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The speeds the protocol currently sees.
    pub fn effective_speeds(&self) -> &[f64] {
        self.speeds.as_slice()
    }

    /// The true speeds (equal to the effective ones except under
    /// feedback estimation).
    pub fn true_speeds(&self) -> &[f64] {
        &self.true_speeds
    }

    /// Which nodes are currently live.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        self.live_count
    }

    /// The current (churn-induced) topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current task population.
    pub fn total_tasks(&self) -> u64 {
        self.state.total_tasks()
    }

    /// The smallest `ε` for which the current state is an ε-approximate
    /// NE on the live topology (0 at an exact NE) — the per-round
    /// steady-state quality metric. Dead nodes are isolated and empty, so
    /// they constrain nothing.
    pub fn nash_gap(&self, threshold: Threshold) -> f64 {
        let (loads, thresholds, occupied) =
            crate::engine::kernel::class_equilibrium_inputs(&self.state, &self.speeds, threshold);
        equilibrium::nash_gap_loads(&self.graph, &self.speeds, &loads, &thresholds, &occupied)
    }

    /// `Ψ₀` restricted to the live nodes: squared speed-normalized
    /// deviation from the balanced allocation of the *current* population
    /// over the *current* live capacity.
    pub fn psi0(&self) -> f64 {
        let s_live: f64 = (0..self.alive.len())
            .filter(|&v| self.alive[v])
            .map(|v| self.speeds.speed(v))
            .sum();
        if s_live <= 0.0 {
            return 0.0;
        }
        let total_weight = self.state.total_weight();
        let per_capacity = total_weight / s_live;
        (0..self.alive.len())
            .filter(|&v| self.alive[v])
            .map(|v| {
                let s = self.speeds.speed(v);
                let e = self.state.node_weight(v) - per_capacity * s;
                e * e / s
            })
            .sum()
    }

    /// Executes one dynamic step: the event layer (speeds → churn →
    /// completions → arrivals, each on its own RNG stream of this round),
    /// then one kernel round on the updated state.
    pub fn step(&mut self) -> DynamicStepReport {
        let mut report = DynamicStepReport::default();
        self.update_speeds();
        self.apply_churn(&mut report);
        self.apply_completions(&mut report);
        self.apply_arrivals(&mut report);

        let (class_weights, counts) = self.state.kernel_view();
        let totals = match self.rule {
            DynamicRule::Relaxed => self.kernel.step(
                &self.graph,
                &self.speeds,
                self.alpha,
                &RelaxedThreshold,
                class_weights,
                counts,
                self.seed,
                self.round,
                self.threads,
            ),
            DynamicRule::OwnWeight => self.kernel.step(
                &self.graph,
                &self.speeds,
                self.alpha,
                &OwnWeightThreshold,
                class_weights,
                counts,
                self.seed,
                self.round,
                self.threads,
            ),
        };
        self.round += 1;
        report.migrations = totals.migrations;
        report.migrated_weight = totals.migrated_weight;
        report
    }

    /// Applies this round's speed dynamics and, when the vector moved,
    /// re-resolves `α` against it (keeping `p_ij ≤ 1/4` as speeds drift).
    fn update_speeds(&mut self) {
        let Some(dynamics) = self.cfg.speed_dynamics else {
            return;
        };
        let mut rng = rng_for(self.seed, self.round, SPEED_STREAM);
        let changed = match dynamics {
            SpeedDynamics::Drift { sigma } => {
                for s in self.true_speeds.iter_mut() {
                    let z = crate::engine::sampling::sample_standard_normal(&mut rng);
                    *s = (*s * (sigma * z).exp()).clamp(self.drift_floor, self.drift_cap);
                }
                self.effective.copy_from_slice(&self.true_speeds);
                true
            }
            SpeedDynamics::Shock { round, fraction } => {
                if self.round != round {
                    return;
                }
                for s in self.true_speeds.iter_mut() {
                    if rng.gen_range(0.0..1.0) < fraction {
                        *s = (*s * 4.0).min(self.drift_cap);
                    }
                }
                self.effective.copy_from_slice(&self.true_speeds);
                true
            }
            SpeedDynamics::Feedback { eta } => {
                for (est, &truth) in self.effective.iter_mut().zip(&self.true_speeds) {
                    *est += eta * (truth - *est);
                }
                true
            }
        };
        if changed {
            self.speeds = SpeedVector::new(self.effective.clone()).expect("speeds stay positive");
            self.alpha = self.alpha_spec.resolve(&self.speeds);
        }
    }

    /// Samples this round's join/leave toggles, re-scatters the tasks of
    /// leaving nodes over their live neighbors, and rebuilds the induced
    /// live topology when membership changed.
    fn apply_churn(&mut self, report: &mut DynamicStepReport) {
        let Some(ChurnProcess { rate }) = self.cfg.churn else {
            return;
        };
        let n = self.alive.len();
        let mut rng = rng_for(self.seed, self.round, CHURN_STREAM);
        // Toggle draws in fixed node order (one uniform per node, live or
        // dead, so the stream position never depends on churn history).
        let mut leaving: Vec<usize> = Vec::new();
        let mut joined = 0u64;
        for v in 0..n {
            let u: f64 = rng.gen_range(0.0..1.0);
            if u >= rate {
                continue;
            }
            if self.alive[v] {
                leaving.push(v);
            } else {
                self.alive[v] = true;
                self.live_count += 1;
                joined += 1;
            }
        }
        // Never let the membership empty out: keep the lowest-index
        // would-be leaver alive instead.
        if !leaving.is_empty() && self.live_count == leaving.len() {
            leaving.remove(0);
        }
        for &v in &leaving {
            self.alive[v] = false;
            self.live_count -= 1;
        }
        report.left = leaving.len() as u64;
        report.joined = joined;
        if leaving.is_empty() && joined == 0 {
            return;
        }
        // Re-scatter each leaver's tasks uniformly over its live
        // base-graph neighbors (sequential conditional binomials — the
        // exact uniform multinomial), falling back to the lowest-index
        // live node when it has none.
        let k = self.state.classes();
        let fallback = self.alive.iter().position(|&a| a).expect("a live node");
        for &v in &leaving {
            let targets: Vec<usize> = self
                .base_graph
                .neighbors(slb_graphs::NodeId(v))
                .iter()
                .map(|j| j.index())
                .filter(|&j| self.alive[j])
                .collect();
            let (_, counts) = self.state.kernel_view();
            for c in 0..k {
                let have = counts[v * k + c];
                if have == 0 {
                    continue;
                }
                counts[v * k + c] = 0;
                if targets.is_empty() {
                    counts[fallback * k + c] += have;
                    continue;
                }
                let mut remaining = have;
                for (idx, &j) in targets.iter().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    let rest = (targets.len() - idx) as f64;
                    let take = if idx + 1 == targets.len() {
                        remaining
                    } else {
                        sample_binomial(remaining, 1.0 / rest, &mut rng)
                    };
                    counts[j * k + c] += take;
                    remaining -= take;
                }
            }
        }
        // Remap the CSR structure: the subgraph induced on the live set,
        // over the unchanged node index space.
        let alive = &self.alive;
        self.graph = Graph::from_edges(
            n,
            self.base_graph
                .edges()
                .iter()
                .filter(|(a, b)| alive[a.index()] && alive[b.index()])
                .map(|(a, b)| (a.index(), b.index())),
        )
        .expect("induced subgraph of a valid graph is valid");
    }

    /// Removes this round's completed tasks from the class state.
    fn apply_completions(&mut self, report: &mut DynamicStepReport) {
        let Some(process) = self.cfg.completions else {
            return;
        };
        match process {
            CompletionProcess::Rate { mu } => {
                let mut rng = rng_for(self.seed, self.round, COMPLETION_STREAM);
                let (_, counts) = self.state.kernel_view();
                for cell in counts.iter_mut() {
                    if *cell == 0 {
                        continue;
                    }
                    let done = sample_binomial(*cell, mu, &mut rng);
                    *cell -= done;
                    report.completed += done;
                }
            }
            CompletionProcess::PerRound { count } => {
                let total = self.state.total_tasks();
                let take = count.min(total);
                if take == 0 {
                    return;
                }
                // Largest-remainder apportionment proportional to the
                // cell counts: deterministic, exact total.
                let (_, counts) = self.state.kernel_view();
                let mut floors = 0u64;
                let mut fracs: Vec<(f64, usize)> = Vec::new();
                self.scratch_counts.clear();
                for (i, &cell) in counts.iter().enumerate() {
                    let quota = take as f64 * cell as f64 / total as f64;
                    // `quota` is finite and non-negative (`take ≤ total`),
                    // so the only inexactness is the float division —
                    // `.min(cell)` re-clamps it into the cell's range.
                    #[allow(clippy::cast_possible_truncation)]
                    let base = (quota.floor() as u64).min(cell);
                    self.scratch_counts.push(base);
                    floors += base;
                    if cell > base {
                        fracs.push((quota - base as f64, i));
                    }
                }
                // Distribute the leftover to the largest fractional
                // parts; ties break toward lower cell index. `total_cmp`
                // is a total order, so no NaN unwrap is needed (and the
                // fractional parts are finite by construction anyway).
                fracs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut leftover = take - floors;
                for &(_, i) in &fracs {
                    if leftover == 0 {
                        break;
                    }
                    if counts[i] > self.scratch_counts[i] {
                        self.scratch_counts[i] += 1;
                        leftover -= 1;
                    }
                }
                for (cell, &done) in counts.iter_mut().zip(&self.scratch_counts) {
                    *cell -= done;
                    report.completed += done;
                }
            }
        }
    }

    /// Injects this round's arrivals: a sampled total, placed uniformly
    /// over the live nodes, then split over weight classes by the initial
    /// class mix.
    fn apply_arrivals(&mut self, report: &mut DynamicStepReport) {
        let Some(process) = self.cfg.arrivals else {
            return;
        };
        let mut rng = rng_for(self.seed, self.round, ARRIVAL_STREAM);
        let total = match process {
            ArrivalProcess::Poisson { rate } => {
                sample_poisson(rate * self.live_count as f64, &mut rng)
            }
            ArrivalProcess::Batch { size, period } => {
                if self.round.is_multiple_of(period.max(1)) {
                    size
                } else {
                    0
                }
            }
        };
        if total == 0 {
            return;
        }
        report.arrived = total;
        let k = self.state.classes();
        let class_mix = std::mem::take(&mut self.class_mix);
        let mut class_out: Vec<u64> = Vec::new();
        let live = self.live_count;
        let n = self.alive.len();
        let (_, counts) = self.state.kernel_view();
        // Both placement regimes sample the same multinomial of `total`
        // independent uniform choices over the live nodes; the split
        // keeps placement cost `O(min(total, live))` so sparse Poisson
        // arrivals don't pay one binomial per node per round.
        if total <= live as u64 {
            // Sparse regime: draw each task's node directly. Per-node
            // totals are accumulated before the class split so classes
            // are assigned in node order — placement stays a pure
            // function of the arrival stream regardless of draw order.
            if k == 1 && live == n {
                for _ in 0..total {
                    let pick = rng.gen_range(0..live);
                    counts[pick] += 1;
                }
            } else {
                self.scratch_counts.clear();
                self.scratch_counts.resize(live, 0);
                for _ in 0..total {
                    let pick = rng.gen_range(0..live);
                    self.scratch_counts[pick] += 1;
                }
                let mut idx = 0usize;
                for v in 0..n {
                    if !self.alive[v] {
                        continue;
                    }
                    let here = self.scratch_counts[idx];
                    idx += 1;
                    if here == 0 {
                        continue;
                    }
                    if k == 1 {
                        counts[v] += here;
                    } else {
                        sample_multinomial(here, &class_mix, &mut class_out, &mut rng);
                        for (c, &add) in class_out.iter().enumerate() {
                            counts[v * k + c] += add;
                        }
                    }
                }
            }
        } else {
            // Dense regime (large batches): sequential conditional
            // binomials — node v (the idx-th live node of L) receives
            // Binomial(remaining, 1/(L − idx)).
            let mut remaining = total;
            let mut idx = 0usize;
            for v in 0..n {
                if !self.alive[v] {
                    continue;
                }
                if remaining == 0 {
                    break;
                }
                let here = if idx + 1 == live {
                    remaining
                } else {
                    sample_binomial(remaining, 1.0 / (live - idx) as f64, &mut rng)
                };
                idx += 1;
                if here == 0 {
                    continue;
                }
                remaining -= here;
                if k == 1 {
                    counts[v] += here;
                } else {
                    sample_multinomial(here, &class_mix, &mut class_out, &mut rng);
                    for (c, &add) in class_out.iter().enumerate() {
                        counts[v * k + c] += add;
                    }
                }
            }
        }
        self.class_mix = class_mix;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::weighted_fast::WeightedFastSim;
    use crate::model::TaskSet;
    use slb_graphs::generators;

    fn system(n: usize, speeds: Vec<f64>, m: u64) -> System {
        System::new(
            generators::ring(n),
            SpeedVector::new(speeds).unwrap(),
            TaskSet::uniform((m as usize).max(1)),
        )
        .unwrap()
    }

    fn hot_state(n: usize, m: u64) -> ClassCountState {
        let mut per_node = vec![vec![0u64]; n];
        per_node[0][0] = m;
        ClassCountState::new(vec![1.0], per_node)
    }

    #[test]
    fn static_config_reproduces_the_weighted_engine_bit_for_bit() {
        // With no events configured, a dynamic step is exactly a kernel
        // round on the same streams — the trajectory must match the
        // static weighted engine sample for sample.
        let sys = system(16, vec![1.0; 16], 320);
        let mut dynamic = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            hot_state(16, 320),
            DynamicConfig::default(),
            99,
        );
        let mut classic = WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(16, 320), 99);
        for round in 0..40 {
            let a = dynamic.step();
            let b = classic.step();
            assert_eq!(a.migrations, b.migrations, "round {round}");
            for v in 0..16 {
                assert_eq!(
                    dynamic.state().counts(v),
                    classic.state().counts(v),
                    "round {round}, node {v}"
                );
            }
        }
    }

    #[test]
    fn trajectory_is_thread_invariant() {
        let sys = system(24, (0..24).map(|i| 1.0 + (i % 3) as f64).collect(), 480);
        let cfg = DynamicConfig {
            arrivals: Some(ArrivalProcess::Poisson { rate: 0.4 }),
            completions: Some(CompletionProcess::Rate { mu: 0.05 }),
            churn: Some(ChurnProcess { rate: 0.05 }),
            speed_dynamics: Some(SpeedDynamics::Drift { sigma: 0.1 }),
        };
        let run = |threads: usize| {
            let mut sim = DynamicSim::new(
                &sys,
                DynamicRule::Relaxed,
                Alpha::Approximate,
                hot_state(24, 480),
                cfg,
                7,
            )
            .with_threads(threads);
            let mut log = Vec::new();
            for _ in 0..60 {
                let rep = sim.step();
                log.push((
                    rep.migrations,
                    rep.arrived,
                    rep.completed,
                    rep.left,
                    rep.joined,
                    sim.total_tasks(),
                ));
            }
            (
                log,
                (0..24)
                    .map(|v| sim.state().counts(v).to_vec())
                    .collect::<Vec<_>>(),
            )
        };
        let (log1, counts1) = run(1);
        let (log8, counts8) = run(8);
        let (log64, counts64) = run(64);
        assert_eq!(log1, log8);
        assert_eq!(log1, log64);
        assert_eq!(counts1, counts8);
        assert_eq!(counts1, counts64);
    }

    #[test]
    fn population_accounting_balances_every_step() {
        let sys = system(12, vec![1.0; 12], 120);
        let cfg = DynamicConfig {
            arrivals: Some(ArrivalProcess::Poisson { rate: 1.0 }),
            completions: Some(CompletionProcess::Rate { mu: 0.1 }),
            churn: Some(ChurnProcess { rate: 0.1 }),
            speed_dynamics: None,
        };
        let mut sim = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            hot_state(12, 120),
            cfg,
            13,
        );
        let mut population = sim.total_tasks();
        for round in 0..200 {
            let rep = sim.step();
            let expected = population + rep.arrived - rep.completed;
            assert_eq!(sim.total_tasks(), expected, "round {round}");
            population = expected;
            // Dead nodes hold nothing: churn re-scatters before the round.
            for v in 0..12 {
                if !sim.alive()[v] {
                    assert_eq!(
                        sim.state().node_task_count(v),
                        0,
                        "dead node {v} holds tasks"
                    );
                }
            }
        }
    }

    #[test]
    fn count_based_completions_remove_exactly_the_requested_count() {
        let sys = system(8, vec![1.0; 8], 400);
        let cfg = DynamicConfig {
            completions: Some(CompletionProcess::PerRound { count: 7 }),
            ..DynamicConfig::default()
        };
        let mut sim = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            hot_state(8, 400),
            cfg,
            5,
        );
        let mut expect = 400u64;
        while expect > 0 {
            let rep = sim.step();
            assert_eq!(rep.completed, 7.min(expect));
            expect -= rep.completed;
            assert_eq!(sim.total_tasks(), expect);
        }
        // Empty system stays empty and quiet.
        let rep = sim.step();
        assert_eq!(rep.completed, 0);
        assert_eq!(rep.migrations, 0);
    }

    #[test]
    fn batch_arrivals_fire_on_the_period() {
        let sys = system(6, vec![1.0; 6], 0);
        let cfg = DynamicConfig {
            arrivals: Some(ArrivalProcess::Batch {
                size: 30,
                period: 5,
            }),
            ..DynamicConfig::default()
        };
        let mut sim = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            hot_state(6, 0),
            cfg,
            3,
        );
        for round in 0..20u64 {
            let rep = sim.step();
            let expected = if round % 5 == 0 { 30 } else { 0 };
            assert_eq!(rep.arrived, expected, "round {round}");
        }
        assert_eq!(sim.total_tasks(), 4 * 30);
    }

    #[test]
    fn churn_leaves_rescatter_to_live_neighbors_and_remap_the_graph() {
        // Force every node to attempt to leave: the engine must keep one
        // node alive, park the whole population on it, and empty the
        // induced edge set.
        let sys = system(6, vec![1.0; 6], 60);
        let cfg = DynamicConfig {
            churn: Some(ChurnProcess { rate: 1.0 }),
            ..DynamicConfig::default()
        };
        let mut sim = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            hot_state(6, 60),
            cfg,
            11,
        );
        let rep = sim.step();
        assert_eq!(rep.left, 5);
        assert_eq!(sim.live_nodes(), 1);
        assert_eq!(sim.total_tasks(), 60, "re-scatter conserves tasks");
        assert_eq!(sim.graph().edge_count(), 0, "lone survivor has no edges");
        let survivor = sim.alive().iter().position(|&a| a).unwrap();
        assert_eq!(sim.state().node_task_count(survivor), 60);
        // Next round (rate 1 again) every dead node rejoins with zero
        // tasks while the old survivor leaves, scattering its hoard to
        // its freshly-revived ring neighbors. The induced topology is the
        // 6-ring minus one node: a 5-path.
        let rep = sim.step();
        assert_eq!(rep.joined, 5);
        assert_eq!(rep.left, 1);
        assert_eq!(sim.live_nodes(), 5);
        assert_eq!(sim.graph().edge_count(), 4);
        assert_eq!(sim.total_tasks(), 60);
    }

    #[test]
    fn shock_quadruples_the_sampled_fraction_once() {
        let sys = system(32, vec![2.0; 32], 64);
        let cfg = DynamicConfig {
            speed_dynamics: Some(SpeedDynamics::Shock {
                round: 3,
                fraction: 0.5,
            }),
            ..DynamicConfig::default()
        };
        let mut sim = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            hot_state(32, 64),
            cfg,
            17,
        );
        for _ in 0..3 {
            sim.step();
            assert!(sim.effective_speeds().iter().all(|&s| s == 2.0));
        }
        sim.step();
        let hit = sim.effective_speeds().iter().filter(|&&s| s == 8.0).count();
        let unhit = sim.effective_speeds().iter().filter(|&&s| s == 2.0).count();
        assert_eq!(hit + unhit, 32);
        assert!(hit > 0, "an expected half of 32 nodes can't all miss");
        // The shock is one-shot.
        let snapshot = sim.effective_speeds().to_vec();
        sim.step();
        assert_eq!(sim.effective_speeds(), &snapshot[..]);
    }

    #[test]
    fn feedback_estimates_converge_to_the_true_speeds() {
        let truth: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let sys = system(8, truth.clone(), 80);
        let cfg = DynamicConfig {
            speed_dynamics: Some(SpeedDynamics::Feedback { eta: 0.2 }),
            ..DynamicConfig::default()
        };
        let mut sim = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            hot_state(8, 80),
            cfg,
            23,
        );
        assert_eq!(sim.true_speeds(), &truth[..]);
        for _ in 0..60 {
            sim.step();
        }
        for (est, t) in sim.effective_speeds().iter().zip(&truth) {
            assert!((est - t).abs() < 1e-4, "estimate {est} vs true {t}");
        }
    }

    #[test]
    fn drift_keeps_speeds_inside_the_band_and_alpha_valid() {
        let sys = system(16, vec![1.0; 16], 160);
        let cfg = DynamicConfig {
            speed_dynamics: Some(SpeedDynamics::Drift { sigma: 0.5 }),
            ..DynamicConfig::default()
        };
        let mut sim = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            hot_state(16, 160),
            cfg,
            29,
        );
        for _ in 0..100 {
            sim.step();
            let s_max = sim
                .effective_speeds()
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            assert!(sim.effective_speeds().iter().all(|&s| s > 0.0));
            assert!(s_max <= 16.0 + 1e-12, "cap breached: {s_max}");
            // α tracks the moving maximum (p_ij ≤ 1/4 needs α ≥ 4·s_max).
            assert!(sim.alpha >= 4.0 * s_max - 1e-9);
        }
        // Speeds actually moved.
        assert!(sim
            .effective_speeds()
            .iter()
            .any(|&s| (s - 1.0).abs() > 1e-3));
    }

    #[test]
    fn arrival_injection_matches_per_task_reference_chi_squared() {
        // The injection path places a round's arrivals via sequential
        // conditional binomials; the reference semantics is `total`
        // independent uniform node choices. Both are Multinomial(A,
        // uniform), so a χ² goodness-of-fit against the uniform
        // expectation must accept BOTH at the same (generous) critical
        // value — mirroring the sharded-vs-per-task kernel conformance
        // tests.
        let n = 8usize;
        let rounds = 400u64;
        let per_round = 64u64;
        let sys = system(n, vec![1.0; n], 0);
        let cfg = DynamicConfig {
            arrivals: Some(ArrivalProcess::Batch {
                size: per_round,
                period: 1,
            }),
            ..DynamicConfig::default()
        };
        // Injection path: accumulate per-node arrival tallies. Alpha high
        // so no migration noise: with an empty initial state and arrivals
        // only, migrations still happen; instead tally arrivals per node
        // per round by diffing counts before the kernel acts — simplest:
        // run 1-node-at-a-time? Cleaner: use a fresh sim per round and
        // read state after one step with migrations impossible (complete
        // graph of equal loads won't fire? loads differ...). Simplest
        // robust scheme: m = 0 initial, single step per seed, and the
        // kernel's round after injection cannot move tasks because every
        // node's load gap on a ring of equal speeds after one uniform
        // placement round is at most the threshold... not guaranteed.
        // Therefore tally the *report* path: build the sim, step once,
        // and read counts BEFORE any migration by using a rule that never
        // fires: OwnWeight with unit tasks behaves like Relaxed, so
        // instead use alpha = Custom(huge) — p_ij ~ 1/α → essentially no
        // migrations, and any residual migration conserves totals but
        // could blur placement. Use α big enough that P(any migration in
        // the test) < 1e-9.
        let mut tally = vec![0u64; n];
        for seed in 0..rounds {
            let mut sim = DynamicSim::new(
                &sys,
                DynamicRule::Relaxed,
                Alpha::Custom(1e12),
                hot_state(n, 0),
                cfg,
                seed,
            );
            sim.step();
            for (v, t) in tally.iter_mut().enumerate() {
                *t += sim.state().node_task_count(v);
            }
        }
        // Per-task reference: the same number of independent uniform
        // draws, tallied directly.
        let mut reference = vec![0u64; n];
        let mut rng = rng_for(0xfeed, 0, ARRIVAL_STREAM);
        for _ in 0..rounds * per_round {
            reference[rng.gen_range(0..n)] += 1;
        }
        let total = (rounds * per_round) as f64;
        let expected = total / n as f64;
        let chi2 = |tallies: &[u64]| -> f64 {
            tallies
                .iter()
                .map(|&o| {
                    let d = o as f64 - expected;
                    d * d / expected
                })
                .sum()
        };
        // df = 7; the 99.9% quantile is 24.3. Both paths must sit far
        // below it for these sample sizes if they realize the same
        // distribution.
        let injected = chi2(&tally);
        let per_task = chi2(&reference);
        assert!(injected < 24.3, "injection path χ² = {injected}");
        assert!(per_task < 24.3, "reference path χ² = {per_task}");
        assert_eq!(tally.iter().sum::<u64>(), rounds * per_round);
    }

    #[test]
    fn weighted_arrivals_follow_the_initial_class_mix() {
        // Two classes seeded 3:1 — arrivals must keep that mix.
        let sys = System::new(
            generators::ring(8),
            SpeedVector::uniform(8),
            TaskSet::uniform(400),
        )
        .unwrap();
        let mut per_node = vec![vec![0u64, 0u64]; 8];
        per_node[0] = vec![300, 100];
        let state = ClassCountState::new(vec![1.0, 0.5], per_node);
        let cfg = DynamicConfig {
            arrivals: Some(ArrivalProcess::Batch {
                size: 1000,
                period: 1,
            }),
            ..DynamicConfig::default()
        };
        let mut sim = DynamicSim::new(
            &sys,
            DynamicRule::Relaxed,
            Alpha::Approximate,
            state,
            cfg,
            31,
        );
        for _ in 0..20 {
            sim.step();
        }
        let arrived = sim.total_tasks() - 400;
        assert_eq!(arrived, 20_000);
        let heavy = sim.state().class_total(0) - 300;
        let share = heavy as f64 / arrived as f64;
        assert!(
            (share - 0.75).abs() < 0.02,
            "heavy-class share {share} vs mix 0.75"
        );
    }
}
