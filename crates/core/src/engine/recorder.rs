//! Trajectory recording for figure-style experiments.
//!
//! The experiment harness wants `Ψ₀(t)`, `Ψ₁(t)`, `L_Δ(t)` and migration
//! counts as time series (DESIGN.md experiments F1, F4, F5). [`Trace`]
//! samples those at a configurable cadence to keep long runs cheap, and
//! renders itself as CSV.

use crate::model::{System, TaskState};
use crate::potential;
use crate::protocol::RoundReport;
use std::fmt::Write as _;

/// A per-round metrics hook for observed simulation runs
/// ([`Simulation::run_until_observed`](crate::engine::Simulation::run_until_observed)).
///
/// Observers see every committed round (and the initial state as round 0
/// with `report = None`); what they extract — potentials, migration
/// activity, custom counters — is up to them. [`Trace`] implements the
/// trait by sampling on its cadence, so trajectory recording and
/// stop-condition-driven runs compose without a second run loop.
pub trait RoundObserver {
    /// Called after each committed round (and once for the initial state).
    fn observe(
        &mut self,
        round: u64,
        system: &System,
        state: &TaskState,
        report: Option<RoundReport>,
    );
}

/// The no-op observer: `run_until_observed` with `()` is `run_until`.
impl RoundObserver for () {
    fn observe(&mut self, _: u64, _: &System, _: &TaskState, _: Option<RoundReport>) {}
}

impl RoundObserver for Trace {
    fn observe(
        &mut self,
        round: u64,
        system: &System,
        state: &TaskState,
        report: Option<RoundReport>,
    ) {
        self.record(round, system, state, report);
    }
}

/// One sampled row of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRow {
    /// Round index (0 = initial state, before any round).
    pub round: u64,
    /// `Ψ₀(x)` at that round.
    pub psi0: f64,
    /// `Ψ₁(x)` at that round.
    pub psi1: f64,
    /// `L_Δ(x)` at that round.
    pub max_load_deviation: f64,
    /// Migrations in the round that *led* to this state (0 for round 0).
    pub migrations: u64,
    /// Migrated weight in that round.
    pub migrated_weight: f64,
}

/// A sampled trajectory of potentials and migration activity.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    every: u64,
    rows: Vec<TraceRow>,
}

impl Trace {
    /// A trace sampling every `every`-th round (and always round 0).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn new(every: u64) -> Self {
        assert!(every > 0, "sampling cadence must be positive");
        Trace {
            every,
            rows: Vec::new(),
        }
    }

    /// Records the state if `round` falls on the cadence (or is 0).
    /// Returns whether a row was recorded.
    pub fn record(
        &mut self,
        round: u64,
        system: &System,
        state: &TaskState,
        report: Option<RoundReport>,
    ) -> bool {
        if !round.is_multiple_of(self.every) && !self.rows.is_empty() {
            return false;
        }
        let p = potential::report(system, state);
        self.rows.push(TraceRow {
            round,
            psi0: p.psi0,
            psi1: p.psi1,
            max_load_deviation: p.max_load_deviation,
            migrations: report.map_or(0, |r| r.migrations as u64),
            migrated_weight: report.map_or(0.0, |r| r.migrated_weight),
        });
        true
    }

    /// Unconditionally records the state (used for the final round).
    pub fn record_forced(
        &mut self,
        round: u64,
        system: &System,
        state: &TaskState,
        report: Option<RoundReport>,
    ) {
        let p = potential::report(system, state);
        self.rows.push(TraceRow {
            round,
            psi0: p.psi0,
            psi1: p.psi1,
            max_load_deviation: p.max_load_deviation,
            migrations: report.map_or(0, |r| r.migrations as u64),
            migrated_weight: report.map_or(0.0, |r| r.migrated_weight),
        });
    }

    /// The sampled rows, in round order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// The sampling cadence.
    pub fn cadence(&self) -> u64 {
        self.every
    }

    /// Renders the trace as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("round,psi0,psi1,max_load_deviation,migrations,migrated_weight\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                r.round, r.psi0, r.psi1, r.max_load_deviation, r.migrations, r.migrated_weight
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpeedVector, TaskSet};
    use crate::protocol::{Protocol, SelfishUniform};
    use rand::SeedableRng;
    use slb_graphs::{generators, NodeId};

    #[test]
    fn records_on_cadence() {
        let sys = crate::model::System::new(
            generators::ring(4),
            SpeedVector::uniform(4),
            TaskSet::uniform(16),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let mut trace = Trace::new(5);
        assert!(trace.record(0, &sys, &st, None));
        let p = SelfishUniform::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for round in 1..=20u64 {
            let report = p.round(&sys, &mut st, &mut rng);
            trace.record(round, &sys, &st, Some(report));
        }
        // Rounds 0, 5, 10, 15, 20.
        assert_eq!(trace.rows().len(), 5);
        assert_eq!(trace.rows()[0].round, 0);
        assert_eq!(trace.rows()[4].round, 20);
        assert_eq!(trace.cadence(), 5);
        // Potential decays along the trace from the hot start.
        assert!(trace.rows()[4].psi0 < trace.rows()[0].psi0);
    }

    #[test]
    fn forced_record_ignores_cadence() {
        let sys = crate::model::System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::uniform(2),
        )
        .unwrap();
        let st = TaskState::all_on_node(&sys, NodeId(0));
        let mut trace = Trace::new(1000);
        trace.record(0, &sys, &st, None);
        trace.record_forced(7, &sys, &st, None);
        assert_eq!(trace.rows().len(), 2);
        assert_eq!(trace.rows()[1].round, 7);
    }

    #[test]
    fn csv_shape() {
        let sys = crate::model::System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::uniform(4),
        )
        .unwrap();
        let st = TaskState::all_on_node(&sys, NodeId(1));
        let mut trace = Trace::new(1);
        trace.record(0, &sys, &st, None);
        let csv = trace.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "round,psi0,psi1,max_load_deviation,migrations,migrated_weight"
        );
        assert!(lines.next().unwrap().starts_with("0,"));
    }

    #[test]
    #[should_panic(expected = "sampling cadence must be positive")]
    fn zero_cadence_panics() {
        let _ = Trace::new(0);
    }
}
