//! Distribution sampling without external distribution crates.
//!
//! All three count-based engines ([`uniform_fast`](crate::engine::uniform_fast),
//! [`weighted_fast`](crate::engine::weighted_fast), and
//! [`speed_fast`](crate::engine::speed_fast)) replace per-task Bernoulli
//! draws with per-(node, class) multinomials, sampled by
//! [`sample_multinomial`] as chained conditional binomials over the one
//! binomial sampler they share: an exact inverse-transform CDF walk for
//! small means, switching to a clamped rounded-normal approximation above
//! [`NORMAL_APPROX_THRESHOLD`] (documented substitution — at those counts
//! the relative error is far below the run-to-run variance of the
//! protocols themselves; see DESIGN.md).
//!
//! # The underflow guard
//!
//! The CDF walk accumulates the pmf via the recurrence
//! `pmf(k+1) = pmf(k)·(n−k)/(k+1)·p/(1−p)`. Deep in the upper tail the pmf
//! underflows to exactly `0.0`, after which the accumulated CDF can never
//! grow — an unlucky uniform draw `u` above the stalled CDF would then walk
//! all the way to `k = n`, returning an absurd sample (for `n` in the
//! millions, a count nowhere near the mean). The walk therefore stops as
//! soon as the pmf underflows, and never proceeds past
//! `mean + 10·sd` (a point with true tail mass below `10⁻²⁰`, unreachable
//! by any representable `u` unless the recurrence has already degraded).

use rand::rngs::StdRng;
use rand::Rng;

/// Mean above which [`sample_binomial`] switches to the normal
/// approximation.
pub const NORMAL_APPROX_THRESHOLD: f64 = 64.0;

/// Samples a standard normal via Box–Muller.
pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The inverse-transform CDF walk for `Binomial(n, p)` at quantile `u`,
/// guarded against pmf underflow (see the module docs).
///
/// Requires `0 < p ≤ 1/2` (callers reduce to this range via the symmetry
/// `Bin(n, p) = n − Bin(n, 1−p)`). Exposed so the underflow guard can be
/// regression-tested with an adversarial `u`; use [`sample_binomial`] for
/// ordinary sampling.
pub fn binomial_inverse_cdf(n: u64, p: f64, u: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 0.5, "walk requires 0 < p ≤ 1/2");
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Hard cap at mean + 10·sd: the true mass beyond it is < 10⁻²⁰, so
    // reaching the cap means `u` lies above every representable CDF value.
    // The cast is exact enough: the value is non-negative and `n.min`
    // clamps it back into `0..=n` before use.
    #[allow(clippy::cast_possible_truncation)]
    let cap = n.min((mean + 10.0 * sd).ceil() as u64 + 1);
    // pmf(0) = (1−p)^n, computed in log space to avoid underflow at k = 0.
    let mut pmf = ((n as f64) * (1.0 - p).ln()).exp();
    let mut cdf = pmf;
    let mut k = 0u64;
    let ratio = p / (1.0 - p);
    while u > cdf && k < cap {
        k += 1;
        pmf *= (n - k + 1) as f64 / k as f64 * ratio;
        if pmf <= 0.0 {
            // The pmf underflowed: the CDF can never grow again, so
            // walking further would run to `cap` (and, before the guard
            // existed, to `k = n`) without adding any probability mass.
            break;
        }
        cdf += pmf;
    }
    k
}

/// Samples `Binomial(n, p)`.
///
/// Exact inverse-transform walk ([`binomial_inverse_cdf`]) for means up to
/// [`NORMAL_APPROX_THRESHOLD`]; clamped rounded normal beyond.
pub fn sample_binomial(n: u64, p: f64, rng: &mut StdRng) -> u64 {
    // A NaN `p` passes every range guard below (all comparisons are
    // false) and would fall through to the CDF walk, where only a
    // debug_assert stands between it and a garbage count in release
    // builds. Reject non-finite inputs loudly instead.
    assert!(
        p.is_finite(),
        "binomial probability must be finite, got {p}"
    );
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Exploit symmetry to keep p ≤ 1/2 (shorter CDF walks).
    if p > 0.5 {
        return n - sample_binomial(n, 1.0 - p, rng);
    }
    let mean = n as f64 * p;
    if mean > NORMAL_APPROX_THRESHOLD {
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let x = mean + sd * sample_standard_normal(rng);
        // The clamp pins `x` into `[0, n]` before the cast truncates.
        #[allow(clippy::cast_possible_truncation)]
        return x.round().clamp(0.0, n as f64) as u64;
    }
    // pmf(0) cannot underflow here: with p ≤ 1/2, `−n·ln(1−p) ≤
    // 2·ln(2)·mean ≤ 89`, so pmf(0) = (1−p)^n ≥ e⁻⁸⁹ — the walk's own
    // guard covers everything past k = 0.
    let u: f64 = rng.gen_range(0.0..1.0);
    binomial_inverse_cdf(n, p, u)
}

/// Samples a multinomial over `probs` (success probabilities of one draw,
/// with an implicit "stay" remainder `1 − Σprobs`) for `count` independent
/// draws, via chained conditional binomials: given that a draw missed every
/// earlier destination, it hits destination `d` with probability
/// `probs[d] / (1 − Σ_{e<d} probs[e])`.
///
/// `out` is overwritten with one count per destination (resized to
/// `probs.len()`); the return value is the total across destinations. The
/// chain stops early once every draw is spent, so trailing destinations
/// cost nothing. Destinations with `probs[d] ≤ 0` consume no randomness
/// (the conditional binomial short-circuits to 0 inside
/// [`sample_binomial`] without touching the RNG) — callers that filter
/// zero-probability destinations before the call draw the identical
/// sample sequence.
///
/// The per-destination draws inherit [`sample_binomial`]'s guarantees,
/// including the pmf-underflow cap of [`binomial_inverse_cdf`]: no
/// destination can receive a count beyond `mean + 10σ` of its conditional
/// binomial unless the exact walk is still accumulating real mass.
///
/// # Panics
///
/// Debug-asserts that `Σprobs ≤ 1` (within floating-point slack); the
/// conditional probabilities are clamped to 1, so release builds degrade
/// gracefully on marginal rounding excess.
pub fn sample_multinomial(count: u64, probs: &[f64], out: &mut Vec<u64>, rng: &mut StdRng) -> u64 {
    debug_assert!(
        probs.iter().sum::<f64>() <= 1.0 + 1e-9,
        "multinomial probabilities exceed 1"
    );
    out.clear();
    out.resize(probs.len(), 0);
    let mut remaining = count;
    let mut rem_prob = 1.0f64;
    let mut total = 0u64;
    for (slot, &q) in out.iter_mut().zip(probs) {
        if remaining == 0 {
            break;
        }
        // Guard the `1 − Σp` renormalization edge: when Σprobs reaches 1
        // (e.g. a re-scatter over all live neighbors) the running
        // remainder can land at 0 — or marginally below it under
        // floating-point cancellation — and the naive `q / rem_prob`
        // would hand a non-finite or negative conditional probability to
        // the binomial sampler. In that limit every remaining draw
        // belongs to the current destination, so the conditional is 1.
        let cond = if rem_prob > 0.0 {
            (q / rem_prob).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let moved = sample_binomial(remaining, cond, rng);
        if moved > 0 {
            *slot = moved;
            total += moved;
            remaining -= moved;
        }
        rem_prob -= q;
    }
    total
}

/// Samples `Poisson(lambda)` — the per-round arrival totals of the
/// dynamic-scenario layer.
///
/// Knuth's product-of-uniforms method below [`NORMAL_APPROX_THRESHOLD`]
/// (its cost is O(λ), fine for small means); a clamped rounded normal
/// beyond, mirroring the binomial sampler's documented substitution (at
/// those means the relative error is far below protocol run-to-run
/// variance).
///
/// # Panics
///
/// If `lambda` is negative or non-finite.
pub fn sample_poisson(lambda: f64, rng: &mut StdRng) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "Poisson rate must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > NORMAL_APPROX_THRESHOLD {
        let x = lambda + lambda.sqrt() * sample_standard_normal(rng);
        // 10σ above the mean carries ~no mass; the clamp only guards the
        // normal tail (and pins the value non-negative before the cast).
        #[allow(clippy::cast_possible_truncation)]
        return x.round().clamp(0.0, lambda + 10.0 * lambda.sqrt()) as u64;
    }
    poisson_product_walk(lambda, || rng.gen_range(0.0..1.0))
}

/// Knuth's product-of-uniforms walk for `Poisson(lambda)` in the
/// small-rate regime, over an explicit uniform source — the exact path of
/// [`sample_poisson`], exposed so the zero-draw guard can be
/// regression-tested with an adversarial stream (mirroring
/// [`binomial_inverse_cdf`]).
///
/// `uniform()` draws come from `[0, 1)`, and `gen_range(0.0..1.0)` *can*
/// return exactly `0.0`. An unguarded product treats that draw as the
/// entire remaining tail mass vanishing at once: the product collapses to
/// `0.0 ≤ e^{−λ}` and the walk terminates on the spot, biasing the sample
/// low (most visibly at small λ, where each draw's termination
/// probability is largest). A uniform of exactly 0 is the measure-zero
/// quantile the inverse transform never attains, so non-positive draws
/// are discarded and redrawn — streams that never draw 0 (every practical
/// seed) are untouched.
///
/// The caller keeps `0 < lambda ≤` [`NORMAL_APPROX_THRESHOLD`]
/// (debug-asserted); beyond that [`sample_poisson`] switches to the
/// normal approximation, and `e^{−λ}` would underflow the walk anyway.
pub fn poisson_product_walk(lambda: f64, mut uniform: impl FnMut() -> f64) -> u64 {
    debug_assert!(
        lambda > 0.0 && lambda <= NORMAL_APPROX_THRESHOLD,
        "product walk requires 0 < λ ≤ threshold, got {lambda}"
    );
    let mut positive = move || loop {
        let u = uniform();
        if u > 0.0 {
            return u;
        }
    };
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut prod: f64 = positive();
    while prod > limit {
        k += 1;
        prod *= positive();
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(10, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(10, 1.0, &mut rng), 10);
        for _ in 0..100 {
            let k = sample_binomial(10, 0.3, &mut rng);
            assert!(k <= 10);
        }
    }

    #[test]
    fn binomial_mean_is_right_small() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, p, trials) = (20u64, 0.25f64, 20000);
        let sum: u64 = (0..trials).map(|_| sample_binomial(n, p, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        let expected = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p) / trials as f64).sqrt();
        assert!(
            (mean - expected).abs() < 5.0 * sd,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn binomial_mean_is_right_large() {
        let mut rng = StdRng::seed_from_u64(3);
        let (n, p, trials) = (100_000u64, 0.2f64, 2000);
        let sum: u64 = (0..trials).map(|_| sample_binomial(n, p, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        let expected = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p) / trials as f64).sqrt();
        assert!(
            (mean - expected).abs() < 5.0 * sd,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn binomial_symmetry_branch() {
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 20000;
        let sum: u64 = (0..trials)
            .map(|_| sample_binomial(12, 0.75, &mut rng))
            .sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 9.0).abs() < 0.15, "mean {mean} vs 9.0");
    }

    #[test]
    fn cdf_walk_is_the_quantile_function_in_the_bulk() {
        // Sanity anchors: u below pmf(0) gives 0; the median of a
        // symmetric-ish binomial sits at the mean.
        let p0 = 0.9f64.powi(10);
        assert_eq!(binomial_inverse_cdf(10, 0.1, p0 * 0.5), 0);
        assert_eq!(binomial_inverse_cdf(40, 0.5, 0.5), 20);
    }

    #[test]
    fn multinomial_conserves_and_matches_marginals() {
        // Destination d's marginal is Binomial(count, probs[d]); check the
        // empirical means and that totals never exceed the draw count.
        let probs = [0.1f64, 0.05, 0.2];
        let count = 40u64;
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            let total = sample_multinomial(count, &probs, &mut out, &mut rng);
            assert_eq!(out.len(), 3);
            assert_eq!(out.iter().sum::<u64>(), total);
            assert!(total <= count);
            for (s, &o) in sums.iter_mut().zip(&out) {
                *s += o;
            }
        }
        for (d, &p) in probs.iter().enumerate() {
            let mean = sums[d] as f64 / trials as f64;
            let expected = count as f64 * p;
            let sd = (count as f64 * p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (mean - expected).abs() < 6.0 * sd,
                "destination {d}: mean {mean} vs expected {expected}"
            );
        }
    }

    #[test]
    fn multinomial_zero_probability_destinations_consume_no_randomness() {
        // Interleaving q = 0 destinations must not change the sample
        // stream: the conditional binomial short-circuits before the RNG.
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for _ in 0..50 {
            sample_multinomial(30, &[0.1, 0.2], &mut out_a, &mut a);
            sample_multinomial(30, &[0.0, 0.1, 0.0, 0.2, 0.0], &mut out_b, &mut b);
            assert_eq!(out_a[0], out_b[1]);
            assert_eq!(out_a[1], out_b[3]);
            assert_eq!(out_b[0] + out_b[2] + out_b[4], 0);
        }
    }

    #[test]
    fn multinomial_underflow_cap_regression() {
        // The multinomial chain inherits the binomial walk's pmf-underflow
        // guard: Binomial(10⁷, 5·10⁻⁶) per destination is exactly the
        // regime where the unguarded walk returned k = n (10⁷ tasks to one
        // neighbor). Every per-destination count must respect the far-tail
        // cap of its own conditional binomial, deterministically across
        // seeds.
        let (count, q) = (10_000_000u64, 5e-6);
        let probs = [q, q, q];
        let mut out = Vec::new();
        for seed in 0..500 {
            let mut rng = StdRng::seed_from_u64(seed);
            let total = sample_multinomial(count, &probs, &mut out, &mut rng);
            for (d, &moved) in out.iter().enumerate() {
                // The conditional p grows slightly along the chain; bound
                // every destination by the loosest (largest-p) cap.
                let p = (q / (1.0 - 2.0 * q)).min(0.5);
                let mean = count as f64 * p;
                let cap = (mean + 10.0 * (count as f64 * p * (1.0 - p)).sqrt()).ceil() as u64 + 1;
                assert!(
                    moved <= cap,
                    "seed {seed} destination {d}: {moved} escaped the cap {cap}"
                );
            }
            assert!(total <= 3 * ((count as f64 * q).ceil() as u64 * 2 + 200));
        }
    }

    #[test]
    #[should_panic(expected = "binomial probability must be finite")]
    fn binomial_rejects_nan_probability() {
        // Regression: NaN slipped past every range guard (`p <= 0`,
        // `p >= 1`, `p > 0.5` are all false for NaN) into the CDF walk,
        // where release builds produced a garbage count. Now it panics
        // deterministically.
        let mut rng = StdRng::seed_from_u64(1);
        sample_binomial(10, f64::NAN, &mut rng);
    }

    #[test]
    #[should_panic(expected = "binomial probability must be finite")]
    fn binomial_rejects_infinite_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_binomial(10, f64::INFINITY, &mut rng);
    }

    #[test]
    fn multinomial_survives_probabilities_summing_to_one() {
        // The `1 − Σp` renormalization edge: with Σprobs = 1 exactly, the
        // running remainder hits 0 (or dips marginally negative under
        // cancellation) at the last destination. The conditional there
        // must resolve to 1 — every remaining draw lands — rather than
        // dividing by a non-positive remainder and feeding NaN to the
        // binomial sampler.
        let mut rng = StdRng::seed_from_u64(6);
        let mut out = Vec::new();
        for probs in [
            vec![0.25f64, 0.25, 0.25, 0.25],
            vec![0.3f64, 0.3, 0.4],
            // Sums to 1.0 only after cancellation error accumulates.
            vec![0.1f64; 10],
            vec![1.0f64],
        ] {
            for _ in 0..200 {
                let total = sample_multinomial(64, &probs, &mut out, &mut rng);
                assert_eq!(total, 64, "all draws must land when Σp = 1");
                assert_eq!(out.iter().sum::<u64>(), 64);
            }
        }
    }

    #[test]
    fn poisson_edge_cases_and_mean() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        // Small-mean regime (Knuth walk).
        let trials = 40_000;
        let lambda = 3.5;
        let sum: u64 = (0..trials).map(|_| sample_poisson(lambda, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        let sd = (lambda / trials as f64).sqrt();
        assert!((mean - lambda).abs() < 5.0 * sd, "mean {mean} vs {lambda}");
        // Large-mean regime (normal approximation).
        let lambda = 400.0;
        let trials = 4000;
        let sum: u64 = (0..trials).map(|_| sample_poisson(lambda, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        let sd = (lambda / trials as f64).sqrt();
        assert!((mean - lambda).abs() < 5.0 * sd, "mean {mean} vs {lambda}");
    }

    #[test]
    #[should_panic(expected = "Poisson rate must be finite")]
    fn poisson_rejects_nan_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_poisson(f64::NAN, &mut rng);
    }

    #[test]
    fn poisson_walk_guards_the_zero_draw() {
        // Regression: `gen_range(0.0..1.0)` can return exactly 0.0, and
        // the unguarded product walk treated it as instant termination.
        // Scripted stream [0.0, 0.9, 0.02] at λ = 3 (limit e⁻³ ≈ 0.0498):
        // the old walk saw prod = 0.0 ≤ limit and returned k = 0; the
        // guard discards the zero, continues with 0.9 (> limit, so k
        // increments), then 0.9·0.02 = 0.018 < limit stops at k = 1.
        let mut stream = [0.0, 0.9, 0.02].into_iter();
        let k = poisson_product_walk(3.0, || stream.next().expect("stream long enough"));
        assert_eq!(k, 1, "zero draw must be redrawn, not end the walk");
        // A zero appearing mid-walk is discarded the same way: with
        // [0.9, 0.0, 0.02] the zero sits where the unguarded walk would
        // have collapsed the product after the first increment.
        let mut stream = [0.9, 0.0, 0.02].into_iter();
        let k = poisson_product_walk(3.0, || stream.next().expect("stream long enough"));
        assert_eq!(k, 1);
        // Streams that never draw 0 are byte-for-byte the old walk: the
        // guard consumes no extra randomness.
        let mut direct = StdRng::seed_from_u64(77);
        let mut wrapped = StdRng::seed_from_u64(77);
        for _ in 0..2000 {
            let a = sample_poisson(2.5, &mut direct);
            let b = poisson_product_walk(2.5, || wrapped.gen_range(0.0..1.0));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn poisson_small_lambda_chi_square() {
        // Distributional regression for the guarded walk: bin 50k draws
        // at λ = 3 against the exact pmf and require the χ² statistic
        // under the 0.999 quantile. A sampler biased toward k = 0 (the
        // zero-draw failure mode) or otherwise distorted fails loudly.
        let lambda = 3.0f64;
        let trials = 50_000usize;
        let bins = 9usize; // k = 0..8, plus a ≥ 9 tail bin.
        let mut observed = vec![0u64; bins + 1];
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..trials {
            let k = sample_poisson(lambda, &mut rng) as usize;
            observed[k.min(bins)] += 1;
        }
        // pmf(k) = e^{−λ} λ^k / k!, accumulated so the tail bin is exact.
        let mut expected = vec![0.0f64; bins + 1];
        let mut pmf = (-lambda).exp();
        let mut cdf = 0.0;
        for (k, slot) in expected.iter_mut().enumerate().take(bins) {
            if k > 0 {
                pmf *= lambda / k as f64;
            }
            *slot = pmf * trials as f64;
            cdf += pmf;
        }
        expected[bins] = (1.0 - cdf) * trials as f64;
        let chi2: f64 = observed
            .iter()
            .zip(&expected)
            .map(|(&o, &e)| (o as f64 - e) * (o as f64 - e) / e)
            .sum();
        // 0.999 quantile of χ² with 9 degrees of freedom.
        assert!(chi2 < 27.88, "χ² = {chi2} rejects the Poisson pmf");
    }

    #[test]
    fn cdf_walk_survives_pmf_underflow() {
        // Regression for the underflow bug: Binomial(10⁷, 5·10⁻⁶) has mean
        // 50 (exact-walk regime) but its pmf recurrence underflows to 0.0
        // around k ≈ 260, freezing the accumulated CDF strictly below any
        // u close enough to 1. The unguarded walk then ran to k = n = 10⁷
        // — an absurd sample 6 orders of magnitude past the mean. The
        // guard must stop at the far-tail cap instead, even for the most
        // adversarial quantile.
        let (n, p) = (10_000_000u64, 5e-6);
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let cap = (mean + 10.0 * sd).ceil() as u64 + 1;
        for u in [1.0 - f64::EPSILON, 1.0] {
            let k = binomial_inverse_cdf(n, p, u);
            assert!(k <= cap, "k = {k} escaped the cap {cap} at u = {u}");
        }
        // Sampled values (the public API) stay sane too.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let k = sample_binomial(n, p, &mut rng);
            assert!(k <= cap, "sampled k = {k} beyond the cap {cap}");
        }
    }
}
