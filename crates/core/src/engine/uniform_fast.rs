//! Fast count-based simulation of Algorithm 1 for uniform tasks.
//!
//! With uniform tasks, task identity is irrelevant to the dynamics: a round
//! of Algorithm 1 is fully described by how many of node `i`'s `w_i` tasks
//! move to each neighbor. Each task independently picks neighbor `j` with
//! probability `1/deg(i)` and then migrates with probability `p_ij`, so the
//! vector of per-neighbor counts is **multinomial** with success
//! probabilities `q_j = p_ij/deg(i)` (and "stay" probability `1 − Σq_j`).
//! Sampling that multinomial directly — via chained conditional binomials —
//! replaces `O(m)` per-task work with `O(Σ_i deg(i)) = O(|E|)` plus the
//! sampled counts, a large constant-factor win for the Table 1 sweeps where
//! `m/n` is large.
//!
//! The round itself is executed by the shared count kernel
//! ([`crate::engine::kernel`]) as its one-class instantiation under the
//! weight-independent threshold rule. The binomial sampler
//! ([`crate::engine::sampling`], shared with the weight-class engines) is
//! exact (inverse-transform CDF walk) up to a mean of
//! [`NORMAL_APPROX_THRESHOLD`], beyond which a clamped normal
//! approximation takes over; at those counts the relative error is far
//! below the run-to-run variance of the protocol itself (documented
//! substitution — see DESIGN.md).

use crate::engine::kernel::{self, CountKernel, RelaxedThreshold};
use crate::equilibrium;
use crate::model::{SpeedVector, System};
use crate::potential;
use crate::protocol::Alpha;

pub use crate::engine::sampling::NORMAL_APPROX_THRESHOLD;

/// The count-based state: `counts[i]` tasks on node `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountState {
    counts: Vec<u64>,
}

impl CountState {
    /// Builds from explicit counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn new(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "need at least one node");
        CountState { counts }
    }

    /// All `m` tasks on one node.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n`.
    pub fn all_on_node(n: usize, node: usize, m: u64) -> Self {
        assert!(node < n, "node out of range");
        let mut counts = vec![0u64; n];
        counts[node] = m;
        CountState { counts }
    }

    /// The per-node counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mutable node-major view for the count kernel (one class per node).
    pub(crate) fn counts_mut(&mut self) -> &mut [u64] {
        &mut self.counts
    }

    /// Total number of tasks.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Node weights as `f64` (uniform tasks: weight = count).
    pub fn node_weights(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Loads `ℓ_i = w_i/s_i`.
    pub fn loads(&self, speeds: &SpeedVector) -> Vec<f64> {
        self.counts
            .iter()
            .zip(speeds.as_slice())
            .map(|(&c, s)| c as f64 / s)
            .collect()
    }
}

/// Outcome of a fast run (mirrors [`crate::engine::RunOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastRunOutcome {
    /// Rounds executed.
    pub rounds: u64,
    /// Whether the target was reached within the budget.
    pub reached: bool,
    /// Total migrations performed during the run.
    pub migrations: u64,
}

/// Per-round metrics hook for the uniform count-based engine — the
/// counterpart of
/// [`ClassRoundObserver`](crate::engine::weighted_fast::ClassRoundObserver)
/// for [`CountState`] runs. Observers see the initial state as round 0
/// with `migrations = None`, then every committed round.
pub trait CountRoundObserver {
    /// Called after each committed round (and once for the initial state).
    fn observe(&mut self, round: u64, system: &System, state: &CountState, migrations: Option<u64>);
}

/// The no-op observer: running observed with `()` is running unobserved.
impl CountRoundObserver for () {
    fn observe(&mut self, _: u64, _: &System, _: &CountState, _: Option<u64>) {}
}

/// Stop rules understood by [`UniformFastSim::run_until_observed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UniformFastStop {
    /// `Ψ₀ ≤ bound`.
    Psi0Below(f64),
    /// Exact (uniform-task) Nash equilibrium.
    Nash,
    /// ε-approximate Nash equilibrium.
    EpsNash(f64),
}

/// Count-based simulator of **Algorithm 1** (uniform tasks): the
/// single-class instantiation of the shared
/// [`CountKernel`](crate::engine::kernel) under the weight-independent
/// [`RelaxedThreshold`] rule.
#[derive(Debug)]
pub struct UniformFastSim<'a> {
    system: &'a System,
    alpha: f64,
    state: CountState,
    /// Master seed; each round's shards derive their streams from
    /// `(seed, round, shard)`, so the trajectory is thread-invariant.
    seed: u64,
    /// Worker cap for the sharded round (result-invariant).
    threads: usize,
    round: u64,
    /// The shared count kernel (reusable round scratch).
    kernel: CountKernel,
    /// Cached all-ones per-node threshold weights (uniform tasks), so the
    /// ε-Nash predicates — evaluated before every round when used as a
    /// stop rule — do not re-allocate a constant vector each call.
    unit_thresholds: Vec<f64>,
}

/// The one weight class of the uniform engine (`w = 1`).
const UNIT_CLASS: [f64; 1] = [1.0];

impl<'a> UniformFastSim<'a> {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the system's tasks are not uniform, or the state total
    /// does not match the system's `m`.
    pub fn new(system: &'a System, alpha: Alpha, state: CountState, seed: u64) -> Self {
        assert!(
            system.tasks().is_uniform(),
            "fast path requires uniform tasks"
        );
        assert_eq!(
            state.total(),
            system.task_count() as u64,
            "state total must match the system's task count"
        );
        assert_eq!(
            state.counts().len(),
            system.node_count(),
            "state length must match the node count"
        );
        let nodes = state.counts().len();
        UniformFastSim {
            system,
            alpha: alpha.resolve(system.speeds()),
            state,
            seed,
            threads: 1,
            round: 0,
            kernel: CountKernel::new(),
            unit_thresholds: vec![1.0; nodes],
        }
    }

    /// Caps the worker fan-out of the sharded round. The trajectory is
    /// identical at any value (shard streams depend only on
    /// `(seed, round, shard)`); only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The current counts.
    pub fn state(&self) -> &CountState {
        &self.state
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Executes one round; returns the number of migrations.
    pub fn step(&mut self) -> u64 {
        let totals = self.kernel.step(
            self.system.graph(),
            self.system.speeds(),
            self.alpha,
            &RelaxedThreshold,
            &UNIT_CLASS,
            self.state.counts_mut(),
            self.seed,
            self.round,
            self.threads,
        );
        self.round += 1;
        totals.migrations
    }

    /// `Ψ₀` of the current state.
    pub fn psi0(&self) -> f64 {
        potential::psi0(
            &self.state.node_weights(),
            self.system.speeds(),
            self.system.tasks().total_weight(),
        )
    }

    /// Whether the current state is a (uniform-task) Nash equilibrium.
    pub fn is_nash(&self) -> bool {
        equilibrium::is_nash_uniform_loads(
            self.system.graph(),
            self.system.speeds(),
            &self.state.loads(self.system.speeds()),
            self.state.counts(),
        )
    }

    /// Whether the current state is an ε-approximate (uniform-task) Nash
    /// equilibrium, evaluated count-based — agrees exactly with
    /// [`equilibrium::is_eps_nash`] on the expanded per-task state.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ε ≤ 1`.
    pub fn is_eps_nash(&self, eps: f64) -> bool {
        let speeds = self.system.speeds();
        equilibrium::is_eps_nash_loads(
            self.system.graph(),
            speeds,
            &self.state.loads(speeds),
            &self.unit_thresholds,
            &self.occupied(),
            eps,
        )
    }

    /// The smallest `ε` for which the current state is an ε-approximate
    /// NE (0 at an exact NE), evaluated count-based — agrees exactly with
    /// [`equilibrium::nash_gap`] on the expanded per-task state.
    pub fn nash_gap(&self) -> f64 {
        let speeds = self.system.speeds();
        equilibrium::nash_gap_loads(
            self.system.graph(),
            speeds,
            &self.state.loads(speeds),
            &self.unit_thresholds,
            &self.occupied(),
        )
    }

    fn occupied(&self) -> Vec<bool> {
        self.state.counts().iter().map(|&c| c > 0).collect()
    }

    /// Runs until `stop` holds (checked before every round, so a satisfied
    /// initial state costs zero rounds) or the budget runs out, feeding
    /// every round through `observer`.
    pub fn run_until_observed<O: CountRoundObserver>(
        &mut self,
        stop: UniformFastStop,
        max_rounds: u64,
        observer: &mut O,
    ) -> FastRunOutcome {
        kernel::run_observed_loop(
            self,
            max_rounds,
            |sim| match stop {
                UniformFastStop::Psi0Below(bound) => sim.psi0() <= bound,
                UniformFastStop::Nash => sim.is_nash(),
                UniformFastStop::EpsNash(eps) => sim.is_eps_nash(eps),
            },
            Self::step,
            |&moved| moved,
            |sim, moved| observer.observe(sim.round, sim.system, &sim.state, moved),
        )
    }

    /// Runs until `Ψ₀ ≤ bound` or the budget runs out.
    pub fn run_until_psi0(&mut self, bound: f64, max_rounds: u64) -> FastRunOutcome {
        self.run_until_observed(UniformFastStop::Psi0Below(bound), max_rounds, &mut ())
    }

    /// Runs until an exact Nash equilibrium or the budget runs out.
    pub fn run_until_nash(&mut self, max_rounds: u64) -> FastRunOutcome {
        self.run_until_observed(UniformFastStop::Nash, max_rounds, &mut ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slb_graphs::generators;

    fn sys(n_graph: slb_graphs::Graph, m: usize) -> System {
        let n = n_graph.node_count();
        System::new(n_graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap()
    }

    #[test]
    fn count_state_accessors() {
        let cs = CountState::all_on_node(4, 1, 100);
        assert_eq!(cs.total(), 100);
        assert_eq!(cs.counts(), &[0, 100, 0, 0]);
        assert_eq!(cs.node_weights(), vec![0.0, 100.0, 0.0, 0.0]);
        let speeds = SpeedVector::new(vec![1.0, 2.0, 1.0, 1.0]).unwrap();
        assert_eq!(cs.loads(&speeds), vec![0.0, 50.0, 0.0, 0.0]);
    }

    #[test]
    fn conserves_tasks() {
        let s = sys(generators::torus(3, 3), 900);
        let mut sim = UniformFastSim::new(
            &s,
            Alpha::Approximate,
            CountState::all_on_node(9, 0, 900),
            5,
        );
        for _ in 0..100 {
            sim.step();
        }
        assert_eq!(sim.state().total(), 900);
        assert_eq!(sim.round(), 100);
    }

    #[test]
    fn converges_to_nash() {
        let s = sys(generators::ring(6), 120);
        let mut sim = UniformFastSim::new(
            &s,
            Alpha::Approximate,
            CountState::all_on_node(6, 0, 120),
            6,
        );
        let out = sim.run_until_nash(100_000);
        assert!(out.reached, "no NE within budget");
        assert!(
            out.migrations > 0,
            "reaching NE from the hot start moves tasks"
        );
        // Nash bounds *adjacent* load gaps by 1/s_j = 1; across the ring
        // the spread can accumulate up to diam(C_6) = 3.
        assert!(sim.is_nash());
        let loads = sim.state().loads(s.speeds());
        let spread = loads.iter().cloned().fold(f64::MIN, f64::max)
            - loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread <= 3.0 + 1e-9, "spread {spread} exceeds diam bound");
    }

    #[test]
    fn psi0_decreases_like_task_level_protocol() {
        let s = sys(generators::hypercube(4), 1600);
        let mut sim = UniformFastSim::new(
            &s,
            Alpha::Approximate,
            CountState::all_on_node(16, 0, 1600),
            7,
        );
        let before = sim.psi0();
        for _ in 0..50 {
            sim.step();
        }
        assert!(sim.psi0() < before / 4.0);
    }

    #[test]
    fn matches_task_level_distribution_statistically() {
        // First-round expected outflow from the hot node must match
        // between the fast path and the per-task protocol: both should
        // move ~ Σ_j f_0j tasks on average.
        use crate::protocol::{Protocol, SelfishUniform};
        let s = sys(generators::ring(4), 400);
        let trials = 300;
        let mut fast_total = 0u64;
        for t in 0..trials {
            let mut sim = UniformFastSim::new(
                &s,
                Alpha::Approximate,
                CountState::all_on_node(4, 0, 400),
                1000 + t,
            );
            fast_total += sim.step();
        }
        let mut task_total = 0u64;
        for t in 0..trials {
            let mut st = crate::model::TaskState::all_on_node(&s, slb_graphs::NodeId(0));
            let mut rng = StdRng::seed_from_u64(5000 + t);
            task_total += SelfishUniform::new()
                .round(&s, &mut st, &mut rng)
                .migrations as u64;
        }
        let fast_mean = fast_total as f64 / trials as f64;
        let task_mean = task_total as f64 / trials as f64;
        // Both estimate the same expectation; allow generous sampling slack.
        assert!(
            (fast_mean - task_mean).abs() < 0.15 * task_mean.max(1.0),
            "fast {fast_mean} vs task-level {task_mean}"
        );
    }

    #[test]
    fn run_until_psi0_stops() {
        let s = sys(generators::complete(8), 800);
        let mut sim = UniformFastSim::new(
            &s,
            Alpha::Approximate,
            CountState::all_on_node(8, 0, 800),
            8,
        );
        let start = sim.psi0();
        let out = sim.run_until_psi0(start / 100.0, 100_000);
        assert!(out.reached);
        assert!(sim.psi0() <= start / 100.0);
    }

    #[test]
    fn eps_nash_and_gap_match_expanded_state() {
        use crate::equilibrium::{self, Threshold};
        use crate::model::TaskState;
        let s = sys(generators::ring(5), 60);
        let mut sim =
            UniformFastSim::new(&s, Alpha::Approximate, CountState::all_on_node(5, 0, 60), 3);
        for _ in 0..10 {
            // Expand the counts into an explicit per-task assignment and
            // compare the predicates exactly.
            let mut assignment = Vec::with_capacity(60);
            for (node, &c) in sim.state().counts().iter().enumerate() {
                assignment.extend(std::iter::repeat_n(node, c as usize));
            }
            let st = TaskState::from_assignment(&s, &assignment).unwrap();
            assert_eq!(
                sim.nash_gap(),
                equilibrium::nash_gap(&s, &st, Threshold::UnitWeight)
            );
            for eps in [0.0, 0.1, 0.5, 1.0] {
                assert_eq!(
                    sim.is_eps_nash(eps),
                    equilibrium::is_eps_nash(&s, &st, Threshold::UnitWeight, eps)
                );
            }
            sim.step();
        }
    }

    #[test]
    fn run_until_eps_nash_stops_before_exact() {
        let s = sys(generators::ring(6), 240);
        let run = |stop: UniformFastStop| {
            let mut sim = UniformFastSim::new(
                &s,
                Alpha::Approximate,
                CountState::all_on_node(6, 0, 240),
                17,
            );
            let out = sim.run_until_observed(stop, 100_000, &mut ());
            assert!(out.reached);
            out.rounds
        };
        let approx = run(UniformFastStop::EpsNash(0.5));
        let exact = run(UniformFastStop::Nash);
        assert!(approx <= exact, "ε-NE ({approx}) after exact NE ({exact})");
    }

    #[test]
    fn observer_sees_every_round() {
        struct Tally {
            calls: u64,
            migrations: u64,
        }
        impl CountRoundObserver for Tally {
            fn observe(
                &mut self,
                _round: u64,
                _system: &System,
                state: &CountState,
                migrations: Option<u64>,
            ) {
                self.calls += 1;
                self.migrations += migrations.unwrap_or(0);
                assert_eq!(state.total(), 120);
            }
        }
        let s = sys(generators::ring(6), 120);
        let mut sim = UniformFastSim::new(
            &s,
            Alpha::Approximate,
            CountState::all_on_node(6, 0, 120),
            19,
        );
        let mut tally = Tally {
            calls: 0,
            migrations: 0,
        };
        let out = sim.run_until_observed(UniformFastStop::Nash, 50_000, &mut tally);
        assert!(out.reached);
        // Initial observation plus one per executed round.
        assert_eq!(tally.calls, out.rounds + 1);
        assert_eq!(tally.migrations, out.migrations);
    }

    #[test]
    #[should_panic(expected = "fast path requires uniform tasks")]
    fn weighted_tasks_rejected() {
        let s = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(vec![0.5, 0.5]).unwrap(),
        )
        .unwrap();
        let _ = UniformFastSim::new(&s, Alpha::Approximate, CountState::new(vec![2, 0]), 1);
    }

    #[test]
    #[should_panic(expected = "state total must match")]
    fn total_mismatch_rejected() {
        let s = sys(generators::path(2), 5);
        let _ = UniformFastSim::new(&s, Alpha::Approximate, CountState::new(vec![2, 2]), 1);
    }
}
