//! **Ablation** — the damping constant `α`.
//!
//! DESIGN.md calls out `α = 4·s_max` as the protocol's central design
//! constant: the migration probability scales as `1/α`, so larger `α`
//! means gentler rounds. The analysis needs `α ≥ 4·s_max` to control the
//! variance term in Lemma 4.1 (and the exact-NE phase raises it to
//! `4·s_max/ε`). This ablation sweeps multiples of the default on a fixed
//! instance and also contrasts the coordinated sequential best-response
//! dynamics — quantifying what the concurrency-safe damping costs.
//!
//! Expected shape: time-to-target grows ≈ linearly in `α` (the expected
//! flow is `∝ 1/α`), while the best-response baseline needs orders of
//! magnitude fewer (but centrally coordinated) rounds.
//!
//! Run: `cargo run -p slb-bench --release --bin fig_alpha_ablation [-- --quick]`

use slb_analysis::runner::{run_trials, TrialConfig};
use slb_analysis::stats::Summary;
use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Instance};
use slb_bench::is_quick;
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::engine::{Simulation, StopCondition, StopReason};
use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
use slb_core::protocol::{Alpha, BestResponse};
use slb_graphs::generators::Family;
use slb_graphs::NodeId;

fn main() {
    let quick = is_quick();
    let trials = if quick { 3 } else { 10 };
    let family = Family::Torus {
        rows: if quick { 3 } else { 5 },
        cols: if quick { 3 } else { 5 },
    };
    let tasks_per_node = 64usize;

    let graph = family.build();
    let n = graph.node_count();
    let m = n * tasks_per_node;
    let lambda2 = slb_spectral::closed_form::lambda2_family(family);
    let inst = Instance::uniform_speeds(n, m, graph.max_degree(), lambda2);
    let psi_target = 4.0 * theory::psi_c(&inst);
    let system = System::new(family.build(), SpeedVector::uniform(n), TaskSet::uniform(m))
        .expect("valid instance");
    let system_ref = &system;

    println!(
        "# Ablation: damping constant α on {family} (m={m}, target Ψ₀ ≤ {})\n",
        fmt_value(psi_target)
    );
    let mut table = Table::new(
        "α sweep (randomized protocol) + coordinated baseline",
        &[
            "dynamics",
            "α / 4·s_max",
            "mean rounds",
            "std",
            "rounds × (4·s_max/α)",
        ],
    );

    let base = 4.0 * system.speeds().max();
    for multiple in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let alpha = Alpha::Custom(base * multiple);
        let rounds = run_trials(
            TrialConfig::parallel(trials, 0xAB1A + multiple as u64),
            move |seed| {
                let mut sim = UniformFastSim::new(
                    system_ref,
                    alpha,
                    CountState::all_on_node(n, 0, m as u64),
                    seed,
                );
                let o = sim.run_until_psi0(psi_target, 10_000_000);
                assert!(o.reached, "α ablation exceeded budget");
                o.rounds as f64
            },
        );
        let s = Summary::of(&rounds);
        table.push_row(vec![
            "selfish (alg 1)".into(),
            format!("{multiple}x"),
            fmt_value(s.mean),
            fmt_value(s.std_dev),
            fmt_value(s.mean / multiple),
        ]);
    }

    // Coordinated baseline: sequential best response (deterministic).
    {
        let initial = TaskState::all_on_node(&system, NodeId(0));
        let mut sim = Simulation::new(&system, BestResponse::new(), initial, 0);
        let o = sim.run_until(StopCondition::Psi0Below(psi_target), 100_000);
        let rounds = if o.reason == StopReason::ConditionMet {
            o.rounds as f64
        } else {
            f64::INFINITY
        };
        table.push_row(vec![
            "best-response (coordinated)".into(),
            "-".into(),
            fmt_value(rounds),
            "0".into(),
            "-".into(),
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "(the last column is ~constant: convergence time scales linearly in α,\n\
         the price of concurrency-safe damping; sequential best response needs\n\
         far fewer rounds but each round is m centrally ordered moves.)"
    );
    match write_artifact("fig_alpha_ablation.csv", &table.to_csv()) {
        Ok(path) => println!("raw data: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
