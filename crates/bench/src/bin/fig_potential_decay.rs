//! **F1** — the multiplicative potential drop (Lemmas 3.13/3.14).
//!
//! Records `Ψ₀(t)` from the adversarial hot start on each Table 1 family
//! and compares the decay against the paper's envelope
//! `E[Ψ₀(X_t)] ≤ (1 − 1/γ)^t·Ψ₀(X₀)` — valid while `E[Ψ₀] ≥ ψ_c`. The
//! printed table reports the measured one-e-folding time (rounds for Ψ₀ to
//! drop by e×) next to `γ`; the claim is `measured ≤ γ`.
//!
//! Run: `cargo run -p slb-bench --release --bin fig_potential_decay [-- --quick]`

use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Instance};
use slb_bench::is_quick;
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::model::{SpeedVector, System, TaskSet};
use slb_core::protocol::Alpha;
use slb_graphs::generators::Family;
use std::fmt::Write as _;

fn main() {
    let quick = is_quick();
    let tasks_per_node = if quick { 64 } else { 256 };
    let families = if quick {
        vec![Family::Ring { n: 8 }, Family::Hypercube { d: 3 }]
    } else {
        vec![
            Family::Complete { n: 32 },
            Family::Ring { n: 32 },
            Family::Torus { rows: 6, cols: 6 },
            Family::Hypercube { d: 5 },
        ]
    };
    println!("# F1: Ψ₀ decay vs the (1 − 1/γ)^t envelope\n");
    let mut summary = Table::new(
        "Multiplicative drop",
        &[
            "family",
            "γ (envelope e-folding)",
            "measured e-folding",
            "ratio",
            "ψ_c",
            "fitted decay rate",
        ],
    );
    let mut csv = String::from("family,round,psi0,envelope\n");

    for family in families {
        let graph = family.build();
        let n = graph.node_count();
        let m = n * tasks_per_node;
        let lambda2 = slb_spectral::closed_form::lambda2_family(family);
        let inst = Instance::uniform_speeds(n, m, graph.max_degree(), lambda2);
        let gamma = theory::gamma(&inst);
        let psi_c = theory::psi_c(&inst);

        let system = System::new(family.build(), SpeedVector::uniform(n), TaskSet::uniform(m))
            .expect("valid instance");
        let mut sim = UniformFastSim::new(
            &system,
            Alpha::Approximate,
            CountState::all_on_node(n, 0, m as u64),
            0xF161 + n as u64,
        );
        let psi0_start = sim.psi0();
        let total_rounds = ((4.0 * gamma) as u64).clamp(100, 2_000_000);
        let sample_every = (total_rounds / 200).max(1);

        let mut series: Vec<(u64, f64)> = Vec::new();
        for round in 0..=total_rounds {
            if round % sample_every == 0 {
                let psi = sim.psi0();
                let envelope = (1.0 - 1.0 / gamma).powf(round as f64) * psi0_start;
                let _ = writeln!(csv, "{family},{round},{psi},{envelope}");
                series.push((round, psi));
                if psi <= psi_c {
                    break; // the envelope only applies while Ψ₀ ≥ ψ_c
                }
            }
            sim.step();
        }
        // Shared extractors (tested in slb-analysis::convergence):
        // measured e-folding, fitted geometric rate, and a hard check that
        // the Lemma 3.13 envelope is never violated above ψ_c.
        let measured =
            slb_analysis::convergence::e_folding_round(&series).map_or(f64::INFINITY, |r| r as f64);
        if let Some(round) =
            slb_analysis::convergence::envelope_violation(&series, gamma, psi_c, 0.05)
        {
            panic!("Lemma 3.13 envelope violated on {family} at round {round}");
        }
        let rate =
            slb_analysis::convergence::geometric_rate(&series, psi_c).map_or(f64::NAN, |rho| rho);
        summary.push_row(vec![
            family.to_string(),
            fmt_value(gamma),
            fmt_value(measured),
            fmt_value(measured / gamma),
            fmt_value(psi_c),
            format!("ρ={rate:.4} ≤ {:.4}", 1.0 - 1.0 / gamma),
        ]);
    }

    println!("{}", summary.to_markdown());
    println!(
        "(the paper guarantees an e-folding within γ rounds while Ψ₀ ≥ ψ_c;\n\
         measured e-foldings are faster — the bound is worst-case.)"
    );
    match write_artifact("fig_potential_decay.csv", &csv) {
        Ok(path) => println!("series: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
