//! **Extension** — expanders beyond Table 1.
//!
//! The paper's bounds are stated in terms of `Δ/λ₂`; Table 1 instantiates
//! them for four named families. Random `d`-regular graphs are expanders
//! with high probability (`λ₂ = Θ(1)` independent of `n`, by Cheeger /
//! Lemma 1.10), so the bounds predict `O(ln(m/n))` convergence to the
//! approximate state — as good as the complete graph at constant degree.
//! This experiment verifies that prediction empirically: convergence time
//! on random 4-regular graphs stays flat as `n` grows, with `λ₂` measured
//! by the in-tree Lanczos solver (no closed form exists).
//!
//! Run: `cargo run -p slb-bench --release --bin fig_expander [-- --quick]`

use rand::SeedableRng;
use slb_analysis::runner::{run_trials, TrialConfig};
use slb_analysis::stats::{power_law_fit, Summary};
use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Instance};
use slb_bench::is_quick;
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::model::{SpeedVector, System, TaskSet};
use slb_core::protocol::Alpha;
use slb_graphs::generators;

fn main() {
    let quick = is_quick();
    let trials = if quick { 3 } else { 8 };
    let tasks_per_node = 64usize;
    let sizes: &[usize] = if quick {
        &[16, 32]
    } else {
        &[16, 32, 64, 128, 256]
    };
    let degree = 4usize;

    println!("# Extension: random {degree}-regular expanders\n");
    let mut table = Table::new(
        "Approximate convergence on expanders",
        &[
            "n",
            "λ₂ (lanczos)",
            "γ",
            "mean rounds",
            "std",
            "thm 1.1 bound",
        ],
    );

    let mut ns = Vec::new();
    let mut ts = Vec::new();
    for &n in sizes {
        let mut grng = rand::rngs::StdRng::seed_from_u64(0xE4 + n as u64);
        let graph = generators::random_regular(n, degree, &mut grng);
        let lambda2 = slb_spectral::laplacian::lambda2(&graph).expect("connected expander");
        let m = n * tasks_per_node;
        let inst = Instance::uniform_speeds(n, m, degree, lambda2);
        let psi_target = 4.0 * theory::psi_c(&inst);
        let bound = theory::thm11_expected_rounds(&inst);
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m))
            .expect("valid instance");
        let system_ref = &system;
        let rounds = run_trials(TrialConfig::parallel(trials, 0xE4F + n as u64), |seed| {
            let mut sim = UniformFastSim::new(
                system_ref,
                Alpha::Approximate,
                CountState::all_on_node(n, 0, m as u64),
                seed,
            );
            let o = sim.run_until_psi0(psi_target, (bound * 4.0) as u64 + 1000);
            assert!(o.reached, "expander run exceeded budget");
            o.rounds as f64
        });
        let s = Summary::of(&rounds);
        table.push_row(vec![
            n.to_string(),
            format!("{lambda2:.4}"),
            fmt_value(theory::gamma(&inst)),
            fmt_value(s.mean),
            fmt_value(s.std_dev),
            fmt_value(bound),
        ]);
        ns.push(n as f64);
        ts.push(s.mean);
    }

    println!("{}", table.to_markdown());
    let fit = power_law_fit(&ns, &ts, 1.0);
    println!(
        "fitted T ∝ n^{:.2} (R² {:.3}) — flat, matching the expander prediction\n\
         (λ₂ = Θ(1) ⇒ O(ln(m/n)) rounds regardless of n; contrast the ring's n²).",
        fit.slope, fit.r_squared
    );
    // At quick-mode sizes λ₂ still drifts with n (finite-size effects);
    // the flatness claim is asserted on the full sweep only.
    if !quick {
        assert!(
            fit.slope < 0.6,
            "expander convergence should be nearly size-independent, got n^{:.2}",
            fit.slope
        );
    }
    match write_artifact("fig_expander.csv", &table.to_csv()) {
        Ok(path) => println!("raw data: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
