//! **THM11 / THM12 / THM13** — measured convergence vs. the paper's
//! theorem bounds.
//!
//! * Theorem 1.1: rounds to `Ψ₀ ≤ 4ψ_c` vs `2·T = 4γ·ln(m/n)` on uniform
//!   machines, plus the ε-approximate-NE check with `ε = 2/(1+δ)`.
//! * Theorem 1.2: rounds to an exact NE on machines with integer speeds
//!   (granularity 1) vs `607·Δ²·s_max⁴·n/λ₂`.
//! * Theorem 1.3: weighted tasks — rounds to `Ψ₀ ≤ 4ψ_c^w` under
//!   Algorithm 2 vs the weighted bound.
//!
//! Run: `cargo run -p slb-bench --release --bin theorem_bounds [-- --quick]`

use rand::Rng;
use slb_analysis::runner::{run_trials, TrialConfig};
use slb_analysis::stats::Summary;
use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Instance};
use slb_bench::{is_quick, rounds_until, setup_rng};
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::engine::StopCondition;
use slb_core::equilibrium::{self, Threshold};
use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
use slb_core::potential;
use slb_core::protocol::{Alpha, SelfishUniform, SelfishWeighted};
use slb_graphs::generators::{self, Family};
use slb_graphs::NodeId;

fn thm11(quick: bool, out: &mut Table) {
    let trials = if quick { 3 } else { 10 };
    // m chosen so δ > 1: m ≥ 8·δ·s_max·S·n² with S = n, s_max = 1.
    let cases: &[(Family, usize)] = if quick {
        &[(Family::Ring { n: 8 }, 2), (Family::Hypercube { d: 3 }, 2)]
    } else {
        &[
            (Family::Ring { n: 16 }, 2),
            (Family::Torus { rows: 4, cols: 4 }, 2),
            (Family::Hypercube { d: 4 }, 2),
            (Family::Complete { n: 16 }, 2),
        ]
    };
    for &(family, delta) in cases {
        let graph = family.build();
        let n = graph.node_count();
        let lambda2 = slb_spectral::closed_form::lambda2_family(family);
        let mut inst = Instance::uniform_speeds(n, 0, graph.max_degree(), lambda2);
        let m = theory::m_threshold(&inst, delta as f64).ceil() as usize;
        inst.total_work = m as f64;
        let psi_target = 4.0 * theory::psi_c(&inst);
        let bound = theory::thm11_expected_rounds(&inst);
        let eps = theory::eps_of_delta(delta as f64);

        let system = System::new(family.build(), SpeedVector::uniform(n), TaskSet::uniform(m))
            .expect("valid uniform instance");
        let system_ref = &system;
        let budget = ((bound * 4.0) as u64).max(10_000);
        let rounds = run_trials(TrialConfig::parallel(trials, 0x111 + n as u64), |seed| {
            let mut sim = UniformFastSim::new(
                system_ref,
                Alpha::Approximate,
                CountState::all_on_node(n, 0, m as u64),
                seed,
            );
            let o = sim.run_until_psi0(psi_target, budget);
            // Verify the ε-approximate-NE claim of Theorem 1.1 on the
            // reached state: (1−ε)ℓ_i − ℓ_j ≤ 1/s_j must hold everywhere.
            if o.reached {
                let loads = sim.state().loads(system_ref.speeds());
                for &(a, b) in system_ref.graph().edges() {
                    for (i, j) in [(a, b), (b, a)] {
                        if sim.state().counts()[i.index()] == 0 {
                            continue;
                        }
                        assert!(
                            (1.0 - eps) * loads[i.index()] - loads[j.index()] <= 1.0 + 1e-9,
                            "Theorem 1.1 ε-NE claim violated on {family}"
                        );
                    }
                }
            }
            o.rounds as f64
        });
        let s = Summary::of(&rounds);
        out.push_row(vec![
            "1.1".into(),
            family.to_string(),
            m.to_string(),
            fmt_value(s.mean),
            fmt_value(s.std_dev),
            fmt_value(bound),
            fmt_value(s.mean / bound),
            format!("ε={eps:.3} ok"),
        ]);
    }
}

fn thm12(quick: bool, out: &mut Table) {
    let trials = if quick { 3 } else { 10 };
    let cases: &[(Family, u64)] = if quick {
        &[(Family::Ring { n: 8 }, 2)]
    } else {
        &[
            (Family::Ring { n: 8 }, 2),
            (Family::Ring { n: 16 }, 2),
            (Family::Hypercube { d: 4 }, 2),
            (Family::Torus { rows: 4, cols: 4 }, 3),
        ]
    };
    for &(family, s_max) in cases {
        let graph = family.build();
        let n = graph.node_count();
        let m = 32 * n;
        // Deterministic alternating integer speeds 1..s_max.
        let speeds: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % s_max)).collect();
        let speed_vec = SpeedVector::integer(speeds).expect("integer speeds valid");
        let lambda2 = slb_spectral::closed_form::lambda2_family(family);
        let inst = Instance {
            n,
            total_work: m as f64,
            max_degree: graph.max_degree(),
            lambda2,
            s_min: speed_vec.min(),
            s_max: speed_vec.max(),
            s_total: speed_vec.total(),
            granularity: Some(1.0),
        };
        let bound = theory::thm12_expected_rounds(&inst).expect("granularity declared");
        let system =
            System::new(family.build(), speed_vec, TaskSet::uniform(m)).expect("valid instance");
        let system_ref = &system;
        let budget = ((bound * 2.0) as u64).clamp(100_000, 50_000_000);
        let rounds = run_trials(TrialConfig::parallel(trials, 0x222 + n as u64), |seed| {
            let mut sim = UniformFastSim::new(
                system_ref,
                Alpha::Exact,
                CountState::all_on_node(n, 0, m as u64),
                seed,
            );
            let o = sim.run_until_nash(budget);
            assert!(o.reached, "Theorem 1.2 budget exceeded on {family}");
            o.rounds as f64
        });
        let s = Summary::of(&rounds);
        out.push_row(vec![
            "1.2".into(),
            format!("{family}, s_max={s_max}"),
            m.to_string(),
            fmt_value(s.mean),
            fmt_value(s.std_dev),
            fmt_value(bound),
            fmt_value(s.mean / bound),
            "exact NE".into(),
        ]);
    }
}

fn thm13(quick: bool, out: &mut Table) {
    let trials = if quick { 2 } else { 6 };
    let cases: &[(Family, u64, usize)] = if quick {
        &[(Family::Ring { n: 6 }, 2, 200)]
    } else {
        &[
            (Family::Ring { n: 8 }, 2, 400),
            (Family::Hypercube { d: 3 }, 2, 400),
            (Family::Torus { rows: 3, cols: 3 }, 3, 300),
        ]
    };
    for &(family, s_max, tasks_per_node) in cases {
        let graph = family.build();
        let n = graph.node_count();
        let m = tasks_per_node * n;
        let speeds: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % s_max)).collect();
        let speed_vec = SpeedVector::integer(speeds).expect("integer speeds valid");
        let lambda2 = slb_spectral::closed_form::lambda2_family(family);

        let mut wrng = setup_rng(0x333 + n as u64);
        let weights: Vec<f64> = (0..m).map(|_| wrng.gen_range(0.1..=1.0)).collect();
        let total_w: f64 = weights.iter().sum();
        let inst = Instance {
            n,
            total_work: total_w,
            max_degree: graph.max_degree(),
            lambda2,
            s_min: speed_vec.min(),
            s_max: speed_vec.max(),
            s_total: speed_vec.total(),
            granularity: Some(1.0),
        };
        let psi_target = 4.0 * theory::psi_c_weighted(&inst);
        let bound = theory::thm13_expected_rounds(&inst);
        let system = System::new(
            family.build(),
            speed_vec,
            TaskSet::weighted(weights).expect("weights in (0,1]"),
        )
        .expect("valid instance");
        let system_ref = &system;
        let budget = ((bound * 4.0) as u64).max(20_000);
        let rounds = run_trials(TrialConfig::parallel(trials, 0x444 + n as u64), |seed| {
            let initial = TaskState::all_on_node(system_ref, NodeId(0));
            let (r, reached) = rounds_until(
                system_ref,
                SelfishWeighted::new(),
                initial,
                seed,
                StopCondition::Psi0Below(psi_target),
                budget,
            );
            assert!(reached, "Theorem 1.3 budget exceeded on {family}");
            r as f64
        });
        let s = Summary::of(&rounds);
        out.push_row(vec![
            "1.3".into(),
            format!("{family}, s_max={s_max}, W={total_w:.0}"),
            m.to_string(),
            fmt_value(s.mean),
            fmt_value(s.std_dev),
            fmt_value(bound),
            fmt_value(s.mean / bound),
            "Ψ₀ ≤ 4ψ_c^w".into(),
        ]);
    }
}

fn observation_3_28(out: &mut Table) {
    // The Ω(Δ·diam) improvement factor of Observation 3.28, evaluated on
    // the Table 1 families at n = 64.
    for family in [
        Family::Complete { n: 64 },
        Family::Ring { n: 64 },
        Family::Torus { rows: 8, cols: 8 },
        Family::Hypercube { d: 6 },
    ] {
        let graph = family.build();
        let diam = slb_graphs::traversal::diameter(&graph).expect("connected");
        let factor = theory::observation_3_28_factor(graph.max_degree(), diam);
        out.push_row(vec![
            "Obs 3.28".into(),
            family.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            fmt_value(factor),
            "-".into(),
            "Δ·diam improvement".into(),
        ]);
    }
}

fn main() {
    let quick = is_quick();
    println!(
        "# Theorem bounds: measured vs predicted{}\n",
        if quick { " (quick mode)" } else { "" }
    );
    let mut table = Table::new(
        "Theorems 1.1–1.3",
        &[
            "thm",
            "instance",
            "m",
            "measured",
            "std",
            "paper bound",
            "ratio",
            "note",
        ],
    );
    thm11(quick, &mut table);
    thm12(quick, &mut table);
    thm13(quick, &mut table);
    observation_3_28(&mut table);
    println!("{}", table.to_markdown());
    println!(
        "(ratio < 1 everywhere: the paper's bounds are upper bounds with\n\
         worst-case constants; the shape claim is that measured times stay\n\
         below them and scale no faster.)"
    );
    match write_artifact("theorem_bounds.csv", &table.to_csv()) {
        Ok(path) => println!("raw data: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }

    // Consistency guard for EXPERIMENTS.md: Ψ₀ of a hot start is ≤ m²
    // (used in Lemma 3.15's proof) — checked on one instance here so the
    // binary doubles as a sanity test.
    let system = System::new(
        generators::ring(8),
        SpeedVector::uniform(8),
        TaskSet::uniform(64),
    )
    .expect("valid instance");
    let st = TaskState::all_on_node(&system, NodeId(0));
    let p = potential::report(&system, &st);
    assert!(p.psi0 <= 64.0 * 64.0);
    assert!(!equilibrium::is_nash(&system, &st, Threshold::UnitWeight));
    let _ = SelfishUniform::new();
}
