//! **F3** — Theorem 1.2's speed factors: Nash time vs `s_max` and vs the
//! granularity `ε`.
//!
//! Two sweeps on a fixed ring:
//!
//! 1. integer speeds alternating in `{1, …, s_max}` for
//!    `s_max ∈ {1, 2, 4, 8}` — the bound grows as `s_max⁴`;
//! 2. speeds on an `ε`-grid (`ε ∈ {1, 1/2, 1/4}`) with `s_max = 2` fixed —
//!    the bound grows as `1/ε²` (via `α = 4·s_max/ε`).
//!
//! Measured times grow far more slowly (the bound's constants are
//! worst-case), but must stay below the bound and grow monotonically — the
//! shape claim recorded in EXPERIMENTS.md.
//!
//! Run: `cargo run -p slb-bench --release --bin fig_speed_scaling [-- --quick]`

use slb_analysis::runner::{run_trials, TrialConfig};
use slb_analysis::stats::Summary;
use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Instance};
use slb_bench::is_quick;
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::model::{SpeedVector, System, TaskSet};
use slb_core::protocol::Alpha;
use slb_graphs::generators::Family;

fn measure(
    family: Family,
    speeds: SpeedVector,
    granularity: f64,
    tasks_per_node: usize,
    trials: usize,
    seed: u64,
) -> (Summary, f64) {
    let graph = family.build();
    let n = graph.node_count();
    let m = n * tasks_per_node;
    let lambda2 = slb_spectral::closed_form::lambda2_family(family);
    let inst = Instance {
        n,
        total_work: m as f64,
        max_degree: graph.max_degree(),
        lambda2,
        s_min: speeds.min(),
        s_max: speeds.max(),
        s_total: speeds.total(),
        granularity: Some(granularity),
    };
    let bound = theory::thm12_expected_rounds(&inst).expect("granularity declared");
    let system = System::new(family.build(), speeds, TaskSet::uniform(m)).expect("valid instance");
    let system_ref = &system;
    let budget = ((bound * 2.0) as u64).clamp(200_000, 100_000_000);
    let rounds = run_trials(TrialConfig::parallel(trials, seed), |s| {
        let mut sim = UniformFastSim::new(
            system_ref,
            Alpha::Exact,
            CountState::all_on_node(n, 0, m as u64),
            s,
        );
        let o = sim.run_until_nash(budget);
        assert!(o.reached, "budget exceeded in speed-scaling sweep");
        o.rounds as f64
    });
    (Summary::of(&rounds), bound)
}

fn main() {
    let quick = is_quick();
    let trials = if quick { 3 } else { 8 };
    let family = Family::Ring {
        n: if quick { 8 } else { 12 },
    };
    let tasks_per_node = 32usize;

    println!("# F3: Nash time vs s_max and granularity ({family})\n");

    let mut smax_table = Table::new(
        "Sweep 1: s_max (granularity 1)",
        &[
            "s_max",
            "measured mean",
            "std",
            "thm 1.2 bound",
            "bound/s_max⁴ const",
        ],
    );
    let n = family.node_count();
    for s_max in [1u64, 2, 4, 8] {
        let speeds: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % s_max)).collect();
        let sv = SpeedVector::integer(speeds).expect("valid integer speeds");
        let (s, bound) = measure(family, sv, 1.0, tasks_per_node, trials, 0xF3A + s_max);
        smax_table.push_row(vec![
            s_max.to_string(),
            fmt_value(s.mean),
            fmt_value(s.std_dev),
            fmt_value(bound),
            fmt_value(bound / (s_max as f64).powi(4)),
        ]);
    }
    println!("{}", smax_table.to_markdown());

    // Sweep 2 keeps the speeds fixed at {1, 2} and only varies the
    // *declared* granularity ε (any ε dividing both speeds is a valid
    // common factor per §3.2). That isolates the 1/ε² bound factor and the
    // α = 4·s_max/ε protocol damping from the s_max⁴ factor of sweep 1.
    let mut gran_table = Table::new(
        "Sweep 2: granularity ε (speeds fixed at {1, 2})",
        &["ε", "measured mean", "std", "thm 1.2 bound", "bound·ε²"],
    );
    for &(num, den) in &[(1u32, 1u32), (1, 2), (1, 4)] {
        let eps = num as f64 / den as f64;
        let speeds: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 2.0 }).collect();
        let sv = SpeedVector::with_granularity(speeds, eps).expect("grid speeds valid");
        let (s, bound) = measure(family, sv, eps, tasks_per_node, trials, 0xF3B + den as u64);
        gran_table.push_row(vec![
            format!("{num}/{den}"),
            fmt_value(s.mean),
            fmt_value(s.std_dev),
            fmt_value(bound),
            fmt_value(bound * eps * eps),
        ]);
    }
    println!("{}", gran_table.to_markdown());
    println!(
        "(constant last columns confirm the bound's s_max⁴ and 1/ε² shapes;\n\
         measured times stay below the bound throughout.)"
    );

    let csv = format!("{}\n{}", smax_table.to_csv(), gran_table.to_csv());
    match write_artifact("fig_speed_scaling.csv", &csv) {
        Ok(path) => println!("raw data: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
