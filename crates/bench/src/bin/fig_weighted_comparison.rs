//! **F4** — §4's weighted protocols head to head.
//!
//! On one weighted instance (heavy-tailed weights, two machine classes),
//! runs from the same initial state:
//!
//! * **Algorithm 2** (Definition 4.1 rule) — the paper's protocol,
//! * **Algorithm 2, printed rule** — the uniform-speed pseudocode variant,
//! * **\[6\] baseline** — per-task thresholds.
//!
//! Reports time to `Ψ₀ ≤ 4ψ_c^w`, the final Nash gap under both threshold
//! notions, and the Ψ₀ trajectory CSV. Expected shape: Algorithm 2 freezes
//! at the relaxed equilibrium (small Ψ₀ quickly, nonzero exact-NE gap);
//! the \[6\] baseline keeps polishing light tasks toward the exact NE.
//!
//! Run: `cargo run -p slb-bench --release --bin fig_weighted_comparison [-- --quick]`

use rand::Rng;
use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Instance};
use slb_bench::{is_quick, psi0_trajectory, setup_rng};
use slb_core::engine::{Simulation, StopCondition, StopReason};
use slb_core::equilibrium::{self, Threshold};
use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
use slb_core::protocol::{BhsBaseline, Protocol, SelfishWeighted, WeightedRule};
use slb_graphs::generators::Family;
use slb_graphs::NodeId;
use std::fmt::Write as _;

/// The two concrete protocol types compared by this figure.
enum EvaluatedProtocol {
    Weighted(SelfishWeighted),
    Baseline(BhsBaseline),
}

/// Runs one protocol case: time-to-target, equilibrium quality at
/// quiescence, and the trajectory CSV rows. Returns
/// `(rounds, relaxed_ne, exact_gap, final_psi0)`.
#[allow(clippy::too_many_arguments)]
fn run_case<P: Protocol + Copy>(
    system: &System,
    protocol: P,
    initial: &TaskState,
    psi_target: f64,
    budget: u64,
    trajectory_rounds: u64,
    label: &str,
    csv: &mut String,
) -> (String, bool, f64, f64) {
    let mut sim = Simulation::new(system, protocol, initial.clone(), 0xF4F4);
    let outcome = sim.run_until(StopCondition::Psi0Below(psi_target), budget);
    let rounds_str = if outcome.reason == StopReason::ConditionMet {
        fmt_value(outcome.rounds as f64)
    } else {
        format!("> {budget}")
    };
    // Let it keep running for the equilibrium-quality read-out.
    sim.run_until(StopCondition::Quiescent(500), budget);
    let relaxed = equilibrium::is_nash(system, sim.state(), Threshold::UnitWeight);
    let gap = equilibrium::nash_gap(system, sim.state(), Threshold::LightestTask);
    let psi0 = slb_core::potential::report(system, sim.state()).psi0;
    for (round, psi) in psi0_trajectory(
        system,
        protocol,
        initial.clone(),
        0xF4F4,
        trajectory_rounds,
        (trajectory_rounds / 100).max(1),
    ) {
        let _ = writeln!(csv, "{label},{round},{psi}");
    }
    (rounds_str, relaxed, gap, psi0)
}

fn main() {
    let quick = is_quick();
    let family = Family::Ring {
        n: if quick { 6 } else { 10 },
    };
    let tasks_per_node = if quick { 50 } else { 200 };

    let graph = family.build();
    let n = graph.node_count();
    let m = n * tasks_per_node;
    let speeds: Vec<u64> = (0..n).map(|i| if i % 4 == 0 { 4 } else { 1 }).collect();
    let speed_vec = SpeedVector::integer(speeds).expect("integer speeds");
    let mut wrng = setup_rng(0xF4);
    let weights: Vec<f64> = (0..m).map(|_| wrng.gen_range(0.05..=1.0)).collect();
    let total_w: f64 = weights.iter().sum();
    let lambda2 = slb_spectral::closed_form::lambda2_family(family);
    let inst = Instance {
        n,
        total_work: total_w,
        max_degree: graph.max_degree(),
        lambda2,
        s_min: speed_vec.min(),
        s_max: speed_vec.max(),
        s_total: speed_vec.total(),
        granularity: Some(1.0),
    };
    let psi_target = 4.0 * theory::psi_c_weighted(&inst);

    let system = System::new(
        family.build(),
        speed_vec,
        TaskSet::weighted(weights).unwrap(),
    )
    .expect("valid instance");
    let initial = TaskState::all_on_node(&system, NodeId(0));

    println!(
        "# F4: weighted protocols on {family} (m={m}, W={total_w:.0}, target Ψ₀ ≤ {})\n",
        fmt_value(psi_target)
    );

    let mut table = Table::new(
        "Protocol comparison",
        &[
            "protocol",
            "rounds to Ψ₀ ≤ 4ψ_c^w",
            "relaxed NE (1/s_j)",
            "exact-NE gap",
            "final Ψ₀",
        ],
    );
    let mut csv = String::from("protocol,round,psi0\n");
    let budget: u64 = if quick { 50_000 } else { 400_000 };
    let trajectory_rounds: u64 = if quick { 2_000 } else { 10_000 };

    // One evaluation of a concrete protocol (protocols are Copy).
    let mut evaluate = |label: &str, protocol: &dyn Fn() -> EvaluatedProtocol| {
        let (rounds_str, relaxed, gap, psi0) = match protocol() {
            EvaluatedProtocol::Weighted(p) => run_case(
                &system,
                p,
                &initial,
                psi_target,
                budget,
                trajectory_rounds,
                label,
                &mut csv,
            ),
            EvaluatedProtocol::Baseline(p) => run_case(
                &system,
                p,
                &initial,
                psi_target,
                budget,
                trajectory_rounds,
                label,
                &mut csv,
            ),
        };
        table.push_row(vec![
            label.into(),
            rounds_str,
            if relaxed { "yes".into() } else { "no".into() },
            fmt_value(gap),
            fmt_value(psi0),
        ]);
    };

    evaluate("algorithm-2 (def 4.1)", &|| {
        EvaluatedProtocol::Weighted(SelfishWeighted::new())
    });
    evaluate("algorithm-2 (printed)", &|| {
        EvaluatedProtocol::Weighted(SelfishWeighted::with_rule(
            WeightedRule::PrintedUniformSpeed,
        ))
    });
    evaluate("bhs-baseline [6]", &|| {
        EvaluatedProtocol::Baseline(BhsBaseline::new())
    });

    println!("{}", table.to_markdown());
    println!(
        "(Algorithm 2 with the Definition-4.1 rule freezes at the relaxed\n\
         `1/s_j` equilibrium — the §4 design point; the [6] baseline keeps\n\
         migrating light tasks and drives the exact-NE gap lower. The\n\
         *printed* rule can deadlock before the relaxed equilibrium under\n\
         heterogeneous speeds: its probability is 0 whenever W_i ≤ W_j even\n\
         if ℓ_i − ℓ_j > 1/s_j — empirical evidence for preferring the\n\
         Definition-4.1 form, recorded as inconsistency #2 in DESIGN.md.)"
    );
    match write_artifact("fig_weighted_comparison.csv", &csv) {
        Ok(path) => println!("series: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
