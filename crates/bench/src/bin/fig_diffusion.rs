//! **F5** — the randomized selfish protocol vs rounded-flow discrete
//! diffusion (§1's remark on \[2\]).
//!
//! On the same instances, compares three dynamics from the same hot start:
//!
//! * Algorithm 1 (randomized, selfish),
//! * discrete diffusion (deterministic rounded expected flows),
//! * continuous diffusion (idealized divisible load — the expectation the
//!   randomized protocol mimics).
//!
//! Reports rounds to `Ψ₀ ≤ 4ψ_c`, the residual Ψ₀ at quiescence, and the
//! Ψ₀ trajectories as CSV.
//!
//! Run: `cargo run -p slb-bench --release --bin fig_diffusion [-- --quick]`

use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Instance};
use slb_bench::{is_quick, psi0_trajectory};
use slb_core::engine::{Simulation, StopCondition, StopReason};
use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
use slb_core::potential;
use slb_core::protocol::{diffusion, Alpha, Diffusion, ErrorFeedbackDiffusion, SelfishUniform};
use slb_graphs::generators::Family;
use slb_graphs::NodeId;
use std::fmt::Write as _;

fn main() {
    let quick = is_quick();
    let families = if quick {
        vec![Family::Ring { n: 8 }]
    } else {
        vec![
            Family::Ring { n: 16 },
            Family::Torus { rows: 5, cols: 5 },
            Family::Hypercube { d: 4 },
        ]
    };
    let tasks_per_node = if quick { 64 } else { 128 };
    let budget: u64 = if quick { 100_000 } else { 500_000 };

    println!("# F5: selfish protocol vs discrete & continuous diffusion\n");
    let mut table = Table::new(
        "Selfish vs diffusion",
        &[
            "family",
            "dynamics",
            "rounds to Ψ₀ ≤ 4ψ_c",
            "Ψ₀ at quiescence",
            "note",
        ],
    );
    let mut csv = String::from("family,dynamics,round,psi0\n");

    for family in families {
        let graph = family.build();
        let n = graph.node_count();
        let m = n * tasks_per_node;
        let lambda2 = slb_spectral::closed_form::lambda2_family(family);
        let inst = Instance::uniform_speeds(n, m, graph.max_degree(), lambda2);
        let psi_target = 4.0 * theory::psi_c(&inst);
        let system = System::new(family.build(), SpeedVector::uniform(n), TaskSet::uniform(m))
            .expect("valid instance");
        let initial = TaskState::all_on_node(&system, NodeId(0));
        let trajectory_rounds = if quick { 2_000 } else { 8_000 };
        let cadence = (trajectory_rounds / 100).max(1);

        // Randomized selfish protocol.
        {
            let mut sim = Simulation::new(&system, SelfishUniform::new(), initial.clone(), 0xF5);
            let o = sim.run_until(StopCondition::Psi0Below(psi_target), budget);
            let hit = if o.reason == StopReason::ConditionMet {
                fmt_value(o.rounds as f64)
            } else {
                format!("> {budget}")
            };
            sim.run_until(StopCondition::Quiescent(200), budget);
            let residual = potential::report(&system, sim.state()).psi0;
            table.push_row(vec![
                family.to_string(),
                "selfish (alg 1)".into(),
                hit,
                fmt_value(residual),
                "randomized".into(),
            ]);
            for (round, psi) in psi0_trajectory(
                &system,
                SelfishUniform::new(),
                initial.clone(),
                0xF5,
                trajectory_rounds,
                cadence,
            ) {
                let _ = writeln!(csv, "{family},selfish,{round},{psi}");
            }
        }

        // Discrete diffusion.
        {
            let mut sim = Simulation::new(&system, Diffusion::new(), initial.clone(), 0);
            let o = sim.run_until(StopCondition::Psi0Below(psi_target), budget);
            let hit = if o.reason == StopReason::ConditionMet {
                fmt_value(o.rounds as f64)
            } else {
                format!("> {budget}")
            };
            sim.run_until(StopCondition::Quiescent(10), budget);
            let residual = potential::report(&system, sim.state()).psi0;
            table.push_row(vec![
                family.to_string(),
                "discrete diffusion".into(),
                hit,
                fmt_value(residual),
                "deterministic".into(),
            ]);
            for (round, psi) in psi0_trajectory(
                &system,
                Diffusion::new(),
                initial.clone(),
                0,
                trajectory_rounds,
                cadence,
            ) {
                let _ = writeln!(csv, "{family},discrete-diffusion,{round},{psi}");
            }
        }

        // Error-feedback diffusion (the [2] companion idea): carry the
        // rounding remainder per directed edge between rounds.
        {
            let mut sim =
                Simulation::new(&system, ErrorFeedbackDiffusion::new(), initial.clone(), 0);
            let o = sim.run_until(StopCondition::Psi0Below(psi_target), budget);
            let hit = if o.reason == StopReason::ConditionMet {
                fmt_value(o.rounds as f64)
            } else {
                format!("> {budget}")
            };
            sim.run_until(StopCondition::Quiescent(50), budget);
            let residual = potential::report(&system, sim.state()).psi0;
            table.push_row(vec![
                family.to_string(),
                "error-feedback diffusion".into(),
                hit,
                fmt_value(residual),
                "deterministic + carry".into(),
            ]);
            for (round, psi) in psi0_trajectory(
                &system,
                ErrorFeedbackDiffusion::new(),
                initial.clone(),
                0,
                trajectory_rounds,
                cadence,
            ) {
                let _ = writeln!(csv, "{family},error-feedback,{round},{psi}");
            }
        }

        // Continuous diffusion on divisible load.
        {
            let mut w = initial.node_weights().to_vec();
            let total = system.tasks().total_weight();
            let mut hit: Option<u64> = None;
            for round in 0..=trajectory_rounds {
                let psi = potential::psi0(&w, system.speeds(), total);
                if round % cadence == 0 {
                    let _ = writeln!(csv, "{family},continuous-diffusion,{round},{psi}");
                }
                if hit.is_none() && psi <= psi_target {
                    hit = Some(round);
                }
                w = diffusion::continuous_step(&system, &w, Alpha::Approximate);
            }
            let residual = potential::psi0(&w, system.speeds(), total);
            table.push_row(vec![
                family.to_string(),
                "continuous diffusion".into(),
                hit.map_or_else(|| format!("> {trajectory_rounds}"), |r| fmt_value(r as f64)),
                fmt_value(residual),
                "idealized envelope".into(),
            ]);
        }
    }

    println!("{}", table.to_markdown());
    println!(
        "(the randomized protocol tracks the continuous-diffusion envelope in\n\
         expectation; discrete diffusion stalls earlier due to flow rounding.)"
    );
    match write_artifact("fig_diffusion.csv", &csv) {
        Ok(path) => println!("series: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
