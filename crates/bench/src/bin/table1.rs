//! **T1-approx / T1-exact** — empirical reproduction of the paper's
//! Table 1.
//!
//! For each graph-family row (complete; ring; mesh/torus; hypercube) this
//! binary measures, across a sweep of `n` with `m/n` fixed:
//!
//! * rounds until `Ψ₀ ≤ 4ψ_c` (the ε-approximate-NE column), and
//! * rounds until an exact Nash equilibrium (the NE column),
//!
//! then fits `T ∝ n^k` and prints the fitted exponent next to the
//! exponents implied by this paper's bounds and by those of \[6\]. The
//! reproduction claim is about *shape*: measured exponents should sit at
//! or below this paper's column, which in turn sits far below \[6\]'s.
//!
//! Run: `cargo run -p slb-bench --release --bin table1 [-- --quick]`

use slb_analysis::runner::{measure_uniform_convergence_scaled, Target, TaskScaling, TrialConfig};
use slb_analysis::stats::power_law_fit;
use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Table1Column};
use slb_bench::is_quick;
use slb_graphs::generators::Family;

struct Row {
    label: &'static str,
    sizes: Vec<Family>,
}

fn families(quick: bool) -> Vec<Row> {
    if quick {
        vec![
            Row {
                label: "complete",
                sizes: vec![Family::Complete { n: 8 }, Family::Complete { n: 16 }],
            },
            Row {
                label: "ring",
                sizes: vec![Family::Ring { n: 8 }, Family::Ring { n: 16 }],
            },
            Row {
                label: "torus",
                sizes: vec![
                    Family::Torus { rows: 3, cols: 3 },
                    Family::Torus { rows: 4, cols: 4 },
                ],
            },
            Row {
                label: "hypercube",
                sizes: vec![Family::Hypercube { d: 3 }, Family::Hypercube { d: 4 }],
            },
        ]
    } else {
        vec![
            Row {
                label: "complete",
                sizes: vec![
                    Family::Complete { n: 16 },
                    Family::Complete { n: 32 },
                    Family::Complete { n: 64 },
                    Family::Complete { n: 128 },
                ],
            },
            Row {
                label: "ring",
                sizes: vec![
                    Family::Ring { n: 8 },
                    Family::Ring { n: 16 },
                    Family::Ring { n: 32 },
                    Family::Ring { n: 64 },
                ],
            },
            Row {
                label: "torus",
                sizes: vec![
                    Family::Torus { rows: 4, cols: 4 },
                    Family::Torus { rows: 5, cols: 5 },
                    Family::Torus { rows: 6, cols: 6 },
                    Family::Torus { rows: 8, cols: 8 },
                ],
            },
            Row {
                label: "hypercube",
                sizes: vec![
                    Family::Hypercube { d: 3 },
                    Family::Hypercube { d: 4 },
                    Family::Hypercube { d: 5 },
                    Family::Hypercube { d: 6 },
                ],
            },
        ]
    }
}

fn column(target: Target) -> Table1Column {
    match target {
        Target::ApproxPsi0 => Table1Column::ApproximateNash,
        Target::ExactNash => Table1Column::ExactNash,
    }
}

fn main() {
    let quick = is_quick();
    // Exact-NE column: fixed average load (Theorem 1.2's bound is m-free).
    let tasks_per_node = 32usize;
    // Approx-NE column: fixed δ = 2, i.e. m = 16·n³ on uniform machines,
    // so every reached state is a 2/(1+δ)-approximate NE (Theorem 1.1) and
    // ln(m/n) contributes only a log factor to the n-scaling.
    let delta = 2.0;
    let trials = if quick { 3 } else { 8 };
    println!(
        "# Table 1 reproduction ({trials} trials/point{}; approx column: δ = {delta} ⇒ m = 16n³; exact column: m/n = {tasks_per_node})\n",
        if quick { ", quick mode" } else { "" }
    );

    let mut csv = Table::new(
        "table1-raw",
        &[
            "family",
            "column",
            "n",
            "m",
            "mean_rounds",
            "std",
            "reached",
            "thm_bound",
        ],
    );
    let mut summary = Table::new(
        "Table 1 (empirical): fitted exponents T ∝ n^k",
        &[
            "family",
            "column",
            "fitted k",
            "R²",
            "paper k",
            "[6] k",
            "T @ max n",
            "paper bound @ max n",
        ],
    );

    for target in [Target::ApproxPsi0, Target::ExactNash] {
        let col = column(target);
        let col_name = match col {
            Table1Column::ApproximateNash => "approx-NE",
            Table1Column::ExactNash => "exact-NE",
        };
        for row in families(quick) {
            let mut ns = Vec::new();
            let mut ts = Vec::new();
            let mut last = None;
            for family in &row.sizes {
                let n = family.node_count();
                let scaling = match target {
                    Target::ApproxPsi0 => TaskScaling::DeltaFixed(delta),
                    Target::ExactNash => TaskScaling::PerNode(tasks_per_node),
                };
                // Budget: generous multiple of the relevant paper bound.
                let instance = theory::Instance::uniform_speeds(
                    n,
                    scaling.resolve(n),
                    family.build().max_degree(),
                    slb_spectral::closed_form::lambda2_family(*family),
                );
                let bound = match target {
                    Target::ApproxPsi0 => theory::thm11_expected_rounds(&instance),
                    Target::ExactNash => theory::thm12_expected_rounds(&instance)
                        .expect("uniform speeds carry granularity 1"),
                };
                let budget = ((bound * 3.0) as u64).clamp(10_000, 30_000_000);
                let m = measure_uniform_convergence_scaled(
                    *family,
                    scaling,
                    target,
                    TrialConfig::parallel(trials, 0xB00C + n as u64),
                    budget,
                );
                csv.push_row(vec![
                    row.label.into(),
                    col_name.into(),
                    m.n.to_string(),
                    m.m.to_string(),
                    fmt_value(m.rounds.mean),
                    fmt_value(m.rounds.std_dev),
                    fmt_value(m.reached_fraction),
                    fmt_value(bound),
                ]);
                ns.push(n as f64);
                ts.push(m.rounds.mean);
                last = Some((m, bound));
            }
            let fit = power_law_fit(&ns, &ts, 1.0);
            let (last_m, last_bound) = last.expect("at least one size per family");
            let paper_k = theory::table1_exponent_this_paper(row.sizes[0], col)
                .expect("table families have exponents");
            let bhs_k = match (row.label, col) {
                ("complete", Table1Column::ApproximateNash) => 2.0,
                ("complete", Table1Column::ExactNash) => 6.0,
                ("ring", Table1Column::ApproximateNash) => 3.0,
                ("ring", Table1Column::ExactNash) => 5.0,
                ("torus", Table1Column::ApproximateNash) => 2.0,
                ("torus", Table1Column::ExactNash) => 4.0,
                ("hypercube", Table1Column::ApproximateNash) => 1.0,
                ("hypercube", Table1Column::ExactNash) => 3.0,
                _ => f64::NAN,
            };
            summary.push_row(vec![
                row.label.into(),
                col_name.into(),
                format!("{:.2}", fit.slope),
                format!("{:.3}", fit.r_squared),
                fmt_value(paper_k),
                fmt_value(bhs_k),
                fmt_value(last_m.rounds.mean),
                fmt_value(last_bound),
            ]);
        }
    }

    println!("{}", summary.to_markdown());
    match write_artifact("table1.csv", &csv.to_csv()) {
        Ok(path) => println!("raw data: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
