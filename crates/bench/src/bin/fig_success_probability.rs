//! **F2** — Lemma 3.15(2): `Pr[Ψ₀ ≤ 4ψ_c by T] ≥ 3/4` at
//! `T = 2γ·ln(m/n)`.
//!
//! Runs many independent trials, records each trial's first round hitting
//! `Ψ₀ ≤ 4ψ_c`, and prints the empirical success CDF at fractions of `T`.
//! The lemma's claim is checked at `t = T`; Corollary 3.18's amplification
//! (probability `≥ 1 − 1/4^k` after `k` blocks) is checked at `2T` and
//! `3T`.
//!
//! Run: `cargo run -p slb-bench --release --bin fig_success_probability [-- --quick]`

use slb_analysis::runner::{run_trials, TrialConfig};
use slb_analysis::tables::{fmt_value, write_artifact, Table};
use slb_analysis::theory::{self, Instance};
use slb_bench::is_quick;
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::model::{SpeedVector, System, TaskSet};
use slb_core::protocol::Alpha;
use slb_graphs::generators::Family;
use std::fmt::Write as _;

fn main() {
    let quick = is_quick();
    let trials = if quick { 40 } else { 200 };
    let family = Family::Ring { n: 16 };
    let tasks_per_node = 64usize;

    let graph = family.build();
    let n = graph.node_count();
    let m = n * tasks_per_node;
    let lambda2 = slb_spectral::closed_form::lambda2_family(family);
    let inst = Instance::uniform_speeds(n, m, graph.max_degree(), lambda2);
    let psi_target = 4.0 * theory::psi_c(&inst);
    let t_block = theory::t_block(&inst);

    println!(
        "# F2: success probability of reaching Ψ₀ ≤ 4ψ_c ({family}, m={m}, {trials} trials)\n"
    );
    println!("T = 2γ·ln(m/n) = {}\n", fmt_value(t_block));

    let system = System::new(family.build(), SpeedVector::uniform(n), TaskSet::uniform(m))
        .expect("valid instance");
    let system_ref = &system;
    let budget = (4.0 * t_block) as u64 + 10;

    let hit_rounds = run_trials(TrialConfig::parallel(trials, 0xF2), |seed| {
        let mut sim = UniformFastSim::new(
            system_ref,
            Alpha::Approximate,
            CountState::all_on_node(n, 0, m as u64),
            seed,
        );
        let o = sim.run_until_psi0(psi_target, budget);
        if o.reached {
            o.rounds as f64
        } else {
            f64::INFINITY
        }
    });

    // Empirical hit-time quantiles first: T is a worst-case bound, so the
    // whole distribution typically sits far to its left.
    let mut sorted = hit_rounds.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN hit times"));
    let quantile = |q: f64| sorted[((q * (trials - 1) as f64).round() as usize).min(trials - 1)];
    let mut quantiles = Table::new(
        "Empirical hit-time quantiles (rounds)",
        &["min", "p50", "p90", "p99", "max", "T (bound)"],
    );
    quantiles.push_row(vec![
        fmt_value(quantile(0.0)),
        fmt_value(quantile(0.5)),
        fmt_value(quantile(0.9)),
        fmt_value(quantile(0.99)),
        fmt_value(quantile(1.0)),
        fmt_value(t_block),
    ]);
    println!("{}", quantiles.to_markdown());

    let mut table = Table::new(
        "Empirical CDF of the hit time",
        &["t / T", "t (rounds)", "Pr[hit by t]", "paper guarantee"],
    );
    let mut csv = String::from("t_over_T,t,probability\n");
    for frac in [
        0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0,
    ] {
        let t = frac * t_block;
        let p = hit_rounds.iter().filter(|&&h| h <= t).count() as f64 / trials as f64;
        let guarantee = if frac == 1.0 {
            "≥ 0.75 (Lemma 3.15)".to_string()
        } else if frac == 2.0 {
            format!("≥ {:.3} (Cor 3.18, k=2)", 1.0 - 0.25f64.powi(2))
        } else if frac == 3.0 {
            format!("≥ {:.3} (Cor 3.18, k=3)", 1.0 - 0.25f64.powi(3))
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            format!("{frac:.3}"),
            fmt_value(t),
            format!("{p:.3}"),
            guarantee,
        ]);
        let _ = writeln!(csv, "{frac},{t},{p}");
    }
    println!("{}", table.to_markdown());

    let p_at_t = hit_rounds.iter().filter(|&&h| h <= t_block).count() as f64 / trials as f64;
    assert!(
        p_at_t >= 0.75,
        "Lemma 3.15 violated empirically: Pr[hit by T] = {p_at_t}"
    );
    println!("Lemma 3.15 check: Pr[hit by T] = {p_at_t:.3} ≥ 0.75 ✓");
    match write_artifact("fig_success_probability.csv", &csv) {
        Ok(path) => println!("series: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
