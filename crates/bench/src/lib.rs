//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! The binaries in `src/bin` regenerate the paper's evaluation artifacts
//! (see DESIGN.md's per-experiment index): `table1` for the bound
//! comparison table, `theorem_bounds` for Theorems 1.1–1.3, and the
//! `fig_*` binaries for the figure-style experiments F1–F5. All of them
//! print markdown tables to stdout and drop CSVs under
//! `target/experiments/`.
//!
//! Every binary accepts `--quick` to shrink sizes and trial counts for
//! smoke runs (the full settings are the EXPERIMENTS.md configuration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use slb_core::engine::{Simulation, StopCondition, StopReason};
use slb_core::model::{System, TaskState};
use slb_core::protocol::Protocol;

/// Whether the current invocation asked for a quick smoke run.
pub fn is_quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Rounds-to-target measurement for a task-level protocol, reporting
/// `(rounds, reached)`. Unreached runs report the budget as a censored
/// observation.
pub fn rounds_until<P: Protocol>(
    system: &System,
    protocol: P,
    initial: TaskState,
    seed: u64,
    condition: StopCondition,
    max_rounds: u64,
) -> (u64, bool) {
    let mut sim = Simulation::new(system, protocol, initial, seed);
    let outcome = sim.run_until(condition, max_rounds);
    (outcome.rounds, outcome.reason == StopReason::ConditionMet)
}

/// Records the `Ψ₀` trajectory of a task-level protocol every
/// `sample_every` rounds for `total_rounds` rounds (round 0 included).
pub fn psi0_trajectory<P: Protocol>(
    system: &System,
    protocol: P,
    initial: TaskState,
    seed: u64,
    total_rounds: u64,
    sample_every: u64,
) -> Vec<(u64, f64)> {
    assert!(sample_every > 0, "sampling cadence must be positive");
    let mut sim = Simulation::new(system, protocol, initial, seed);
    let psi = |sim: &Simulation<P>| slb_core::potential::report(system, sim.state()).psi0;
    let mut out = vec![(0u64, psi(&sim))];
    for round in 1..=total_rounds {
        sim.step();
        if round % sample_every == 0 {
            out.push((round, psi(&sim)));
        }
    }
    out
}

/// A deterministically seeded RNG for experiment setup (workload
/// generation, not protocol randomness).
pub fn setup_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_core::equilibrium::Threshold;
    use slb_core::model::{SpeedVector, TaskSet};
    use slb_core::protocol::SelfishUniform;
    use slb_graphs::{generators, NodeId};

    fn sys() -> System {
        System::new(
            generators::ring(4),
            SpeedVector::uniform(4),
            TaskSet::uniform(16),
        )
        .unwrap()
    }

    #[test]
    fn rounds_until_reaches_nash() {
        let s = sys();
        let (rounds, reached) = rounds_until(
            &s,
            SelfishUniform::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            7,
            StopCondition::Nash(Threshold::UnitWeight),
            50_000,
        );
        assert!(reached);
        assert!(rounds > 0);
    }

    #[test]
    fn trajectory_is_sampled_and_decaying() {
        let s = sys();
        let traj = psi0_trajectory(
            &s,
            SelfishUniform::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            7,
            100,
            10,
        );
        assert_eq!(traj.len(), 11); // 0, 10, ..., 100
        assert!(traj.last().unwrap().1 <= traj[0].1);
    }

    #[test]
    fn quick_flag_detection_is_safe() {
        // The test harness args don't include --quick.
        let _ = is_quick();
    }
}
