//! Criterion micro-benchmarks of the serve event loop: one full
//! fixed-traffic run (generate + route + drain) per routing policy on a
//! two-speed ring:64 — once with perfect information (`serve/route`) and
//! once under the degraded-mode stack of crashing backends, a stale
//! lossy load view, and retry/backoff routing (`serve/faults`).
//!
//! The group × id naming is load-bearing: `scripts/bench_baseline.sh`
//! parses this harness's stdout into the committed BENCH snapshots
//! alongside the `round/*` groups, keyed by the last path segment — so
//! the degraded ids carry a `faults-` prefix to stay distinct from the
//! route group's. Each measured iteration is one complete run of
//! ~`RATE × HORIZON` jobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slb_core::model::SpeedVector;
use slb_core::rng::{derive_seed, streams};
use slb_graphs::generators;
use slb_serve::{run, PolicyKind, ServeConfig};
use slb_workloads::faults::{FaultSpec, RetrySpec, SignalSpec};
use slb_workloads::traffic::{OpenLoop, TrafficSpec};
use slb_workloads::weights::WeightDistribution;

/// Offered open-loop rate (jobs per unit of virtual time).
const RATE: f64 = 256.0;
/// Units of virtual time during which traffic is generated.
const HORIZON: u64 = 25;

fn serve_benches(c: &mut Criterion) {
    let graph = generators::ring(64);
    let n = graph.node_count();
    let speeds =
        SpeedVector::integer((0..n as u64).map(|i| 1 + i % 2).collect()).expect("valid speeds");
    let scenario_seed = derive_seed(42, 0, streams::trial::SCENARIO);
    let config_for = |pos: usize| ServeConfig {
        graph: &graph,
        speeds: &speeds,
        traffic: TrafficSpec {
            open: Some(OpenLoop { rate: RATE }),
            closed: None,
        },
        weights: WeightDistribution::Unit,
        faults: None,
        signal: SignalSpec::default(),
        retry: None,
        horizon: HORIZON,
        scenario_seed,
        policy_seed: derive_seed(42, pos as u64, streams::trial::SIM),
    };

    let mut group = c.benchmark_group("serve/route");
    group.sample_size(10);
    for (pos, kind) in PolicyKind::ALL.into_iter().enumerate() {
        let config = config_for(pos);
        group.bench_function(
            BenchmarkId::from_parameter(format!("{}-ring64", kind.label())),
            |b| b.iter(|| run(&config, kind)),
        );
    }
    group.finish();

    // The same run with every degradation axis on: the price of the
    // fault schedule, probe-refreshed signal board, and retry path.
    let mut group = c.benchmark_group("serve/faults");
    group.sample_size(10);
    for (pos, kind) in PolicyKind::ALL.into_iter().enumerate() {
        let config = ServeConfig {
            faults: Some(FaultSpec {
                mttf: 6.0,
                mttr: 2.0,
            }),
            signal: SignalSpec {
                stale: 0.5,
                loss: 0.1,
            },
            retry: Some(RetrySpec { max: 3, base: 0.25 }),
            ..config_for(pos)
        };
        group.bench_function(
            BenchmarkId::from_parameter(format!("faults-{}-ring64", kind.label())),
            |b| b.iter(|| run(&config, kind)),
        );
    }
    group.finish();
}

criterion_group!(benches, serve_benches);
criterion_main!(benches);
