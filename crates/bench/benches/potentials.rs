//! Criterion micro-benchmarks for potentials and equilibrium predicates —
//! the per-round bookkeeping every experiment pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slb_core::equilibrium::{self, Threshold};
use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
use slb_core::potential;
use slb_graphs::generators;

fn build(n_side: usize, tasks_per_node: usize) -> (System, TaskState) {
    let graph = generators::torus(n_side, n_side);
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(11);
    let speeds: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
    let system = System::new(
        graph,
        SpeedVector::new(speeds).expect("valid speeds"),
        TaskSet::uniform(n * tasks_per_node),
    )
    .expect("valid instance");
    let assignment: Vec<usize> = (0..system.task_count())
        .map(|_| rng.gen_range(0..n))
        .collect();
    let state = TaskState::from_assignment(&system, &assignment).expect("valid assignment");
    (system, state)
}

fn potential_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential/report");
    for side in [8usize, 16, 32] {
        let (system, state) = build(side, 50);
        group.bench_function(
            BenchmarkId::from_parameter(format!("torus{side}x{side}")),
            |b| b.iter(|| potential::report(&system, &state)),
        );
    }
    group.finish();

    let (system, state) = build(32, 50);
    c.bench_function("potential/psi0-n1024", |b| {
        b.iter(|| {
            potential::psi0(
                state.node_weights(),
                system.speeds(),
                system.tasks().total_weight(),
            )
        })
    });
}

fn equilibrium_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("equilibrium");
    for side in [8usize, 16, 32] {
        let (system, state) = build(side, 50);
        group.bench_function(
            BenchmarkId::from_parameter(format!("is-nash-torus{side}x{side}")),
            |b| b.iter(|| equilibrium::is_nash(&system, &state, Threshold::UnitWeight)),
        );
    }
    let (system, state) = build(16, 50);
    group.bench_function("nash-gap-torus16x16", |b| {
        b.iter(|| equilibrium::nash_gap(&system, &state, Threshold::UnitWeight))
    });
    group.bench_function("violations-torus16x16", |b| {
        b.iter(|| equilibrium::violations(&system, &state, Threshold::UnitWeight))
    });
    group.finish();
}

fn state_benches(c: &mut Criterion) {
    let (system, state) = build(16, 100);
    c.bench_function("state/loads-n256", |b| b.iter(|| state.loads(&system)));
    c.bench_function("state/tasks-by-node-m25600", |b| {
        b.iter(|| state.tasks_by_node(&system))
    });
    c.bench_function("state/rebuild-aggregates-m25600", |b| {
        b.iter(|| {
            let mut s = state.clone();
            s.rebuild_aggregates(&system);
            s
        })
    });
}

criterion_group!(
    benches,
    potential_benches,
    equilibrium_benches,
    state_benches
);
criterion_main!(benches);
