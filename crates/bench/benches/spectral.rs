//! Criterion micro-benchmarks for the spectral toolkit: dense Jacobi vs
//! sparse shift-invert Lanczos, and the generalized Laplacian.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slb_graphs::generators;
use slb_spectral::{generalized, lanczos, laplacian};

fn lambda2_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda2/dense-jacobi");
    for (label, graph) in [
        ("ring64", generators::ring(64)),
        ("torus8x8", generators::torus(8, 8)),
        ("hypercube6", generators::hypercube(6)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| laplacian::eigendecomposition(&graph).unwrap().lambda2())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lambda2/lanczos");
    for (label, graph) in [
        ("ring600", generators::ring(600)),
        ("hypercube10", generators::hypercube(10)),
        ("torus24x25", generators::torus(24, 25)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| lanczos::lambda2(&graph).unwrap())
        });
    }
    group.finish();
}

fn generalized_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("mu2/generalized");
    let graph = generators::torus(8, 8);
    let speeds: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
    group.bench_function("torus8x8-dense", |b| {
        b.iter(|| generalized::mu2(&graph, &speeds).unwrap())
    });
    let big = generators::ring(500);
    let big_speeds: Vec<f64> = (0..500).map(|i| 1.0 + (i % 3) as f64).collect();
    group.bench_function("ring500-lanczos", |b| {
        b.iter(|| lanczos::mu2(&big, &big_speeds).unwrap())
    });
    group.finish();
}

fn quadratic_form_benches(c: &mut Criterion) {
    let graph = generators::torus(32, 32);
    let x: Vec<f64> = (0..1024).map(|i| (i as f64).sin()).collect();
    c.bench_function("laplacian/quadratic-form-torus32x32", |b| {
        b.iter(|| laplacian::quadratic_form(&graph, &x))
    });
    c.bench_function("laplacian/apply-torus32x32", |b| {
        b.iter(|| laplacian::apply(&graph, &x))
    });
}

criterion_group!(
    benches,
    lambda2_benches,
    generalized_benches,
    quadratic_form_benches
);
criterion_main!(benches);
