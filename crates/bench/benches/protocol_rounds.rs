//! Criterion micro-benchmarks: one protocol round across protocols,
//! topologies, and the fast count-based paths.
//!
//! The `round/*` group × id naming is load-bearing:
//! `scripts/bench_baseline.sh` parses this harness's stdout into
//! `BENCH_baseline.json` (per-engine round throughput at m/n ∈ {10, 100,
//! 1000}), the recorded baseline future perf PRs diff against.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slb_core::engine::speed_fast::{SpeedFastRule, SpeedFastSim};
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::engine::weighted_fast::{ClassCountState, WeightedFastSim};
use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
use slb_core::protocol::{
    Alpha, BhsBaseline, Diffusion, Protocol, SelfishUniform, SelfishWeighted,
};
use slb_graphs::generators;

fn uniform_system(graph: slb_graphs::Graph, tasks_per_node: usize) -> System {
    let n = graph.node_count();
    System::new(
        graph,
        SpeedVector::uniform(n),
        TaskSet::uniform(n * tasks_per_node),
    )
    .expect("valid instance")
}

fn weighted_system(graph: slb_graphs::Graph, tasks_per_node: usize) -> System {
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(1);
    let weights = (0..n * tasks_per_node)
        .map(|_| rng.gen_range(0.05..=1.0))
        .collect();
    System::new(
        graph,
        SpeedVector::uniform(n),
        TaskSet::weighted(weights).expect("weights valid"),
    )
    .expect("valid instance")
}

/// Benchmarks one round of a task-level protocol on a mid-balancing state
/// (run a few warm-up rounds first so the measured round does real work).
fn bench_task_protocol<P: Protocol>(
    c: &mut Criterion,
    group_name: &str,
    id: &str,
    system: &System,
    protocol: P,
) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut state = TaskState::all_on_node(system, slb_graphs::NodeId(0));
    for _ in 0..5 {
        protocol.round(system, &mut state, &mut rng);
    }
    let mut group = c.benchmark_group(group_name);
    group.bench_function(BenchmarkId::from_parameter(id), |b| {
        b.iter(|| {
            let mut s = state.clone();
            protocol.round(system, &mut s, &mut rng)
        })
    });
    group.finish();
}

fn protocol_benches(c: &mut Criterion) {
    let ring = uniform_system(generators::ring(64), 100);
    bench_task_protocol(
        c,
        "round/selfish-uniform",
        "ring64-m6400",
        &ring,
        SelfishUniform::new(),
    );

    let torus = uniform_system(generators::torus(8, 8), 100);
    bench_task_protocol(
        c,
        "round/selfish-uniform",
        "torus8x8-m6400",
        &torus,
        SelfishUniform::new(),
    );

    let weighted = weighted_system(generators::ring(64), 100);
    bench_task_protocol(
        c,
        "round/selfish-weighted",
        "ring64-m6400",
        &weighted,
        SelfishWeighted::new(),
    );
    bench_task_protocol(
        c,
        "round/bhs-baseline",
        "ring64-m6400",
        &weighted,
        BhsBaseline::new(),
    );
    bench_task_protocol(
        c,
        "round/diffusion",
        "ring64-m6400",
        &ring,
        Diffusion::new(),
    );
}

fn fast_path_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("round/uniform-fast");
    for (label, graph, m) in [
        ("ring64-mpn10", generators::ring(64), 640u64),
        ("ring64-mpn100", generators::ring(64), 6_400u64),
        ("ring64-mpn1000", generators::ring(64), 64_000u64),
        ("ring64-m640k", generators::ring(64), 640_000u64),
        ("torus16x16-m25k", generators::torus(16, 16), 25_600u64),
    ] {
        let n = graph.node_count();
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m as usize))
            .expect("valid instance");
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut sim = UniformFastSim::new(
                &system,
                Alpha::Approximate,
                CountState::all_on_node(n, 0, m),
                3,
            );
            for _ in 0..5 {
                sim.step();
            }
            b.iter(|| sim.step())
        });
    }
    group.finish();
}

/// The 2-class weighted scenario shared by the count-vs-per-task engine
/// comparisons: half weight 0.25, half weight 1.0, alternating speeds 1
/// and 2 on ring:64 (a genuinely non-uniform speed vector).
fn two_class_speed_system(tasks_per_node: usize) -> System {
    let graph = generators::ring(64);
    let n = graph.node_count();
    let m = n * tasks_per_node;
    let weights: Vec<f64> = (0..m)
        .map(|t| if t % 2 == 0 { 0.25 } else { 1.0 })
        .collect();
    System::new(
        graph,
        SpeedVector::integer((0..n as u64).map(|i| 1 + i % 2).collect()).expect("valid"),
        TaskSet::weighted(weights).expect("weights valid"),
    )
    .expect("valid instance")
}

fn two_class_hot_state(n: usize, m: usize) -> ClassCountState {
    let mut per_node = vec![vec![0u64; 2]; n];
    per_node[0] = vec![m as u64 / 2, m as u64 / 2];
    ClassCountState::new(vec![0.25, 1.0], per_node)
}

/// The count-based engines against the per-task parallel engine on the
/// same 2-class, two-speed scenario across `m/n` ∈ {10, 100, 1000} — the
/// paper's headline regimes. The count-based round is `O(|E| + n·k)`
/// versus the per-task engine's `O(m)`, so the gap widens with `m/n`;
/// the acceptance target is `round/speed-fast` ≥ 100× over
/// `round/parallel-task-*` at m/n = 1000.
fn count_engine_benches(c: &mut Criterion) {
    use slb_core::engine::parallel::ParallelSimulation;
    for (label, tasks_per_node) in [
        ("ring64-mpn10", 10usize),
        ("ring64-mpn100", 100),
        ("ring64-mpn1000", 1000),
    ] {
        let system = two_class_speed_system(tasks_per_node);
        let n = system.node_count();
        let m = system.task_count();

        let mut group = c.benchmark_group("round/weighted-fast");
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut sim =
                WeightedFastSim::new(&system, Alpha::Approximate, two_class_hot_state(n, m), 3);
            for _ in 0..5 {
                sim.step();
            }
            b.iter(|| sim.step())
        });
        group.finish();

        let mut group = c.benchmark_group("round/speed-fast");
        for (rule, rule_label) in [(SpeedFastRule::Alg2, "alg2"), (SpeedFastRule::Bhs, "bhs")] {
            group.bench_function(
                BenchmarkId::from_parameter(format!("{rule_label}-{label}")),
                |b| {
                    let mut sim = SpeedFastSim::new(
                        &system,
                        rule,
                        Alpha::Approximate,
                        two_class_hot_state(n, m),
                        3,
                    );
                    for _ in 0..5 {
                        sim.step();
                    }
                    b.iter(|| sim.step())
                },
            );
        }
        group.finish();

        let mut group = c.benchmark_group("round/parallel-task-weighted");
        group.sample_size(20);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut sim = ParallelSimulation::with_layout(
                &system,
                SelfishWeighted::new(),
                TaskState::all_on_node(&system, slb_graphs::NodeId(0)),
                3,
                4096,
                1,
            );
            for _ in 0..5 {
                sim.step();
            }
            b.iter(|| sim.step())
        });
        group.finish();

        let mut group = c.benchmark_group("round/parallel-task-bhs");
        group.sample_size(20);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut sim = ParallelSimulation::with_layout(
                &system,
                BhsBaseline::new(),
                TaskState::all_on_node(&system, slb_graphs::NodeId(0)),
                3,
                4096,
                1,
            );
            for _ in 0..5 {
                sim.step();
            }
            b.iter(|| sim.step())
        });
        group.finish();
    }
}

/// Alternating hot/cold counts: every node has an imbalanced neighbor,
/// so a measured round keeps doing real threshold checks *and* real
/// sampling work even after the initial transient levels out (random
/// fluctuations of order √load keep adjacent gaps above the threshold).
fn alternating_counts(n: usize, per_hot: u64) -> Vec<u64> {
    (0..n)
        .map(|v| if v % 2 == 0 { per_hot } else { 0 })
        .collect()
}

/// The tentpole scaling ladder: one sharded round per engine at
/// n ∈ {2¹⁰, 2¹⁶, 2²⁰}. At n = 2²⁰ the uniform instance carries
/// m ≈ 10⁸ tasks (the ISSUE acceptance target: well under a second per
/// round), measured on ring, torus, and hypercube (the expander family),
/// plus an 8-worker variant of the ring.
/// `scripts/bench_baseline.sh` parses the `-n<size>` ids into the
/// committed BENCH snapshots, so the naming is load-bearing.
fn scale_benches(c: &mut Criterion) {
    let per_hot = 190u64; // ≈ 10⁸ tasks at n = 2²⁰

    let mut group = c.benchmark_group("round/uniform-fast-scale");
    group.sample_size(10);
    let mut cases: Vec<(String, slb_graphs::Graph)> = vec![
        ("ring-n1024".into(), generators::ring(1 << 10)),
        ("ring-n65536".into(), generators::ring(1 << 16)),
        ("ring-n1048576".into(), generators::ring(1 << 20)),
        ("torus-n1048576".into(), generators::torus(1 << 10, 1 << 10)),
        ("hypercube-n1048576".into(), generators::hypercube(20)),
    ];
    for (label, graph) in cases.drain(..) {
        let n = graph.node_count();
        let counts = alternating_counts(n, per_hot);
        let m: u64 = counts.iter().sum();
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m as usize))
            .expect("valid instance");
        for threads in if n == 1 << 20 && label.starts_with("ring") {
            vec![1usize, 8]
        } else {
            vec![1usize]
        } {
            let id = if threads == 1 {
                label.clone()
            } else {
                format!("{label}-t{threads}")
            };
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                let mut sim = UniformFastSim::new(
                    &system,
                    Alpha::Approximate,
                    CountState::new(counts.clone()),
                    3,
                )
                .with_threads(threads);
                for _ in 0..3 {
                    sim.step();
                }
                b.iter(|| sim.step())
            });
        }
    }
    group.finish();

    // The 2-class engines on the same ladder: counts split evenly across
    // the two classes, alternating speeds 1/2 for the speed-aware rules.
    let two_class_state = |n: usize| {
        let per_node: Vec<Vec<u64>> = (0..n)
            .map(|v| {
                if v % 2 == 0 {
                    vec![per_hot / 2, per_hot / 2]
                } else {
                    vec![0, 0]
                }
            })
            .collect();
        ClassCountState::new(vec![0.25, 1.0], per_node)
    };
    let two_class_system = |n: usize| {
        let m = (n as u64 / 2) * per_hot;
        // The count engines read class weights from `ClassCountState`, not
        // from the task set (only the total count is cross-checked), so a
        // uniform carrier avoids materializing 10⁸ per-task weights.
        System::new(
            generators::ring(n),
            SpeedVector::integer((0..n as u64).map(|i| 1 + i % 2).collect()).expect("valid"),
            TaskSet::uniform(m as usize),
        )
        .expect("valid instance")
    };

    let sizes = [1usize << 10, 1 << 16, 1 << 20];

    let mut group = c.benchmark_group("round/weighted-fast-scale");
    group.sample_size(10);
    for n in sizes {
        let system = two_class_system(n);
        group.bench_function(BenchmarkId::from_parameter(format!("ring-n{n}")), |b| {
            let mut sim = WeightedFastSim::new(&system, Alpha::Approximate, two_class_state(n), 3);
            for _ in 0..3 {
                sim.step();
            }
            b.iter(|| sim.step())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("round/speed-fast-scale");
    group.sample_size(10);
    for n in sizes {
        let system = two_class_system(n);
        for (rule, rule_label) in [(SpeedFastRule::Alg2, "alg2"), (SpeedFastRule::Bhs, "bhs")] {
            if rule == SpeedFastRule::Bhs && n < 1 << 20 {
                continue; // bhs scales identically; record the top size only
            }
            group.bench_function(
                BenchmarkId::from_parameter(format!("{rule_label}-ring-n{n}")),
                |b| {
                    let mut sim =
                        SpeedFastSim::new(&system, rule, Alpha::Approximate, two_class_state(n), 3);
                    for _ in 0..3 {
                        sim.step();
                    }
                    b.iter(|| sim.step())
                },
            );
        }
    }
    group.finish();
}

/// Arrival-injection overhead: one dynamic round with Poisson arrivals
/// vs one static round of the same engine, both measured from a freshly
/// warmed state on the same ring × hot-count instances as
/// `round/uniform-fast-scale` ring-n1024 / ring-n65536. The setup (sim
/// construction + 3 warm-up rounds) is excluded from the timing, so the
/// `poisson-…` / `static-…` id pair diffs to the per-round cost of
/// injecting ~rate·n arrivals (acceptance: under 2× the static round).
fn dynamic_benches(c: &mut Criterion) {
    use slb_core::engine::dynamic::{ArrivalProcess, DynamicConfig, DynamicRule, DynamicSim};

    let per_hot = 190u64;
    let mut group = c.benchmark_group("round/dynamic");
    group.sample_size(10);
    for n in [1usize << 10, 1 << 16] {
        let counts = alternating_counts(n, per_hot);
        let m: u64 = counts.iter().sum();
        let system = System::new(
            generators::ring(n),
            SpeedVector::uniform(n),
            TaskSet::uniform(m as usize),
        )
        .expect("valid instance");
        let per_node: Vec<Vec<u64>> = counts.iter().map(|&v| vec![v]).collect();
        for (label, cfg) in [
            ("static", DynamicConfig::default()),
            (
                "poisson",
                DynamicConfig {
                    arrivals: Some(ArrivalProcess::Poisson { rate: 0.5 }),
                    ..DynamicConfig::default()
                },
            ),
        ] {
            group.bench_function(
                BenchmarkId::from_parameter(format!("{label}-ring-n{n}")),
                |b| {
                    b.iter_batched(
                        || {
                            let mut sim = DynamicSim::new(
                                &system,
                                DynamicRule::Relaxed,
                                Alpha::Approximate,
                                ClassCountState::new(vec![1.0], per_node.clone()),
                                cfg,
                                3,
                            );
                            for _ in 0..3 {
                                sim.step();
                            }
                            sim
                        },
                        |mut sim| {
                            sim.step();
                            sim
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn parallel_engine_benches(c: &mut Criterion) {
    use slb_core::engine::parallel::ParallelSimulation;
    let system = uniform_system(generators::torus(16, 16), 200); // m = 51200
    let mut group = c.benchmark_group("round/parallel-engine");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("threads{threads}")),
            |b| {
                let mut sim = ParallelSimulation::with_layout(
                    &system,
                    SelfishUniform::new(),
                    TaskState::all_on_node(&system, slb_graphs::NodeId(0)),
                    5,
                    4096,
                    threads,
                );
                for _ in 0..3 {
                    sim.step();
                }
                b.iter(|| sim.step())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    protocol_benches,
    fast_path_benches,
    count_engine_benches,
    scale_benches,
    dynamic_benches,
    parallel_engine_benches
);
criterion_main!(benches);
