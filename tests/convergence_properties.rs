//! Property-based integration tests: protocol invariants over randomized
//! instances, spanning all crates.

use proptest::prelude::*;
use rand::SeedableRng;
use selfish_load_balancing::prelude::*;

/// Strategy: a small connected graph from the named families.
fn arb_family() -> impl Strategy<Value = generators::Family> {
    prop_oneof![
        (3usize..10).prop_map(|n| generators::Family::Ring { n }),
        (2usize..10).prop_map(|n| generators::Family::Path { n }),
        (2usize..8).prop_map(|n| generators::Family::Complete { n }),
        (1u32..4).prop_map(|d| generators::Family::Hypercube { d }),
        ((1usize..4), (2usize..4)).prop_map(|(r, c)| generators::Family::Mesh {
            rows: r,
            cols: c + 1
        }),
        (2usize..9).prop_map(|n| generators::Family::Star { n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn task_conservation_across_protocol_and_seeds(
        family in arb_family(),
        tasks_per_node in 1usize..20,
        seed in 0u64..1000,
        rounds in 1u64..60,
    ) {
        let graph = family.build();
        let n = graph.node_count();
        let m = n * tasks_per_node;
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
        let initial = TaskState::all_on_node(&system, NodeId(0));
        let mut sim = Simulation::new(&system, SelfishUniform::new(), initial, seed);
        sim.run(rounds);
        sim.state().check_invariants(&system).unwrap();
        let total: usize = (0..n).map(|i| sim.state().node_task_count(NodeId(i))).sum();
        prop_assert_eq!(total, m);
    }

    #[test]
    fn psi0_nonnegative_and_zero_only_at_balance(
        family in arb_family(),
        seed in 0u64..500,
    ) {
        let graph = family.build();
        let n = graph.node_count();
        let m = 4 * n;
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let state = Placement::UniformRandom.state(&system, &mut rng);
        let p = potential::report(&system, &state);
        prop_assert!(p.psi0 >= -1e-9);
        prop_assert!(p.psi1 >= -1e-9, "Observation 3.20(2)");
        // Observation 3.16 sandwich.
        prop_assert!(p.max_load_deviation.powi(2) <= p.psi0 + 1e-9);
        prop_assert!(p.psi0 <= system.speeds().total() * p.max_load_deviation.powi(2) + 1e-9);
        // Balanced state has Ψ₀ = 0.
        let balanced: Vec<usize> = (0..m).map(|t| t % n).collect();
        let b = TaskState::from_assignment(&system, &balanced).unwrap();
        let pb = potential::report(&system, &b);
        prop_assert!(pb.psi0 <= p.psi0 + 1e-9);
    }

    #[test]
    fn nash_states_absorb_all_protocols(
        family in arb_family(),
        seed in 0u64..200,
    ) {
        let graph = family.build();
        let n = graph.node_count();
        // Perfectly balanced uniform instance: always a Nash equilibrium.
        let m = 3 * n;
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
        let balanced: Vec<usize> = (0..m).map(|t| t % n).collect();
        let state = TaskState::from_assignment(&system, &balanced).unwrap();
        prop_assert!(equilibrium::is_nash(&system, &state, Threshold::UnitWeight));
        let mut sim = Simulation::new(&system, SelfishUniform::new(), state.clone(), seed);
        let report_total = sim.run(30);
        prop_assert_eq!(report_total, 0, "Nash states must be absorbing");
        prop_assert_eq!(sim.state(), &state);
    }

    #[test]
    fn potential_never_increases_in_expectation_over_runs(
        family in arb_family(),
        seed in 0u64..200,
    ) {
        // Ψ₀ is a supermartingale-ish quantity for the protocol while far
        // from equilibrium; over a full run from the hot start the *final*
        // value must be below the initial one (statistically certain at
        // these sizes).
        let graph = family.build();
        let n = graph.node_count();
        if n < 2 {
            return Ok(());
        }
        let m = 20 * n;
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
        let initial = TaskState::all_on_node(&system, NodeId(0));
        let before = potential::report(&system, &initial).psi0;
        let mut sim = Simulation::new(&system, SelfishUniform::new(), initial, seed);
        sim.run(300);
        let after = potential::report(&system, sim.state()).psi0;
        prop_assert!(after <= before + 1e-9, "Ψ₀ rose from {before} to {after}");
    }

    #[test]
    fn weighted_conservation_with_speeds(
        tasks_per_node in 1usize..12,
        seed in 0u64..300,
    ) {
        let graph = generators::torus(3, 3);
        let n = graph.node_count();
        let m = n * tasks_per_node;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let weights: Vec<f64> = (0..m).map(|_| rng.gen_range(0.01..=1.0)).collect();
        let total: f64 = weights.iter().sum();
        let speeds = SpeedVector::integer((0..n as u64).map(|i| 1 + i % 4).collect()).unwrap();
        let system = System::new(graph, speeds, TaskSet::weighted(weights).unwrap()).unwrap();
        let initial = TaskState::all_on_node(&system, NodeId(0));
        for protocol_id in 0..2 {
            let final_state = if protocol_id == 0 {
                let mut sim = Simulation::new(&system, SelfishWeighted::new(), initial.clone(), seed);
                sim.run(50);
                sim.into_state()
            } else {
                let mut sim = Simulation::new(&system, BhsBaseline::new(), initial.clone(), seed);
                sim.run(50);
                sim.into_state()
            };
            final_state.check_invariants(&system).unwrap();
            let sum: f64 = final_state.node_weights().iter().sum();
            prop_assert!((sum - total).abs() < 1e-6 * total.max(1.0));
        }
    }

    #[test]
    fn eps_nash_hierarchy(
        family in arb_family(),
        seed in 0u64..200,
    ) {
        // Exact NE ⇒ ε-NE for every ε; larger ε is always weaker.
        let graph = family.build();
        let n = graph.node_count();
        let m = 5 * n;
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let state = Placement::UniformRandom.state(&system, &mut rng);
        let gap = equilibrium::nash_gap(&system, &state, Threshold::UnitWeight);
        prop_assert!(equilibrium::is_eps_nash(&system, &state, Threshold::UnitWeight, (gap + 1e-9).min(1.0)));
        if equilibrium::is_nash(&system, &state, Threshold::UnitWeight) {
            prop_assert!(gap <= 1e-9);
            for eps in [0.0, 0.1, 0.5, 1.0] {
                prop_assert!(equilibrium::is_eps_nash(&system, &state, Threshold::UnitWeight, eps));
            }
        } else {
            prop_assert!(!equilibrium::is_eps_nash(&system, &state, Threshold::UnitWeight, (gap - 1e-6).max(0.0)));
        }
    }

    #[test]
    fn lambda2_spectral_bounds_hold_on_all_families(family in arb_family()) {
        use selfish_load_balancing::spectral::bounds;
        use selfish_load_balancing::graphs::{cheeger, traversal};
        let graph = family.build();
        if graph.node_count() < 2 {
            return Ok(());
        }
        let l2 = laplacian::lambda2(&graph).unwrap();
        // Closed form agrees with the numeric solver.
        let closed = closed_form::lambda2_family(family);
        prop_assert!((l2 - closed).abs() < 1e-6, "λ₂ {l2} vs closed {closed}");
        let diam = traversal::diameter(&graph);
        let iso = if graph.node_count() <= cheeger::EXACT_LIMIT {
            Some(cheeger::isoperimetric_number(&graph).0)
        } else {
            None
        };
        let violations = bounds::check_all(&graph, l2, diam, iso);
        prop_assert!(violations.is_empty(), "violated: {violations:?}");
    }
}
