//! End-to-end tests of the `slb` binary: exit codes and usage output for
//! bad invocations, plus one smoke run per subcommand.

use std::process::{Command, Output};

fn slb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slb"))
        .args(args)
        .output()
        .expect("failed to launch slb")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = slb(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE:"), "stderr: {}", stderr(&out));
}

#[test]
fn help_succeeds_and_prints_usage() {
    for flag in ["--help", "-h", "help"] {
        let out = slb(&[flag]);
        assert!(out.status.success(), "`slb {flag}` must exit zero");
        assert!(stdout(&out).contains("USAGE:"));
        assert!(stdout(&out).contains("simulate"));
    }
}

#[test]
fn per_subcommand_help_is_boolean_and_succeeds() {
    for cmd in ["simulate", "spectral", "bounds", "sweep", "serve"] {
        let out = slb(&[cmd, "--help"]);
        assert!(out.status.success(), "`slb {cmd} --help` must exit zero");
        assert!(stdout(&out).contains("USAGE:"), "stdout: {}", stdout(&out));
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = slb(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown command"), "stderr: {err}");
    assert!(err.contains("USAGE:"));
}

#[test]
fn bad_flag_values_fail_nonzero() {
    // Non-flag argument where a flag is expected.
    let out = slb(&["simulate", "oops"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("expected --flag"));

    // Flag missing its value: parsed as a boolean flag, so the numeric
    // parse fails downstream with a clear message (not a panic).
    let out = slb(&["simulate", "--n"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("invalid value `true` for --n"));

    // Duplicated flag.
    let out = slb(&["simulate", "--n", "4", "--n", "8"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("given twice"));

    // Unparsable numeric value.
    let out = slb(&["simulate", "--n", "many"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("invalid value"));

    // Misspelled flag on a classic subcommand.
    let out = slb(&["simulate", "--sede", "7"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown flag --sede"));

    // Unknown topology family.
    let out = slb(&["spectral", "--family", "blob"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown family"));

    // Inverted weights range must fail cleanly, not panic.
    let out = slb(&["simulate", "--n", "4", "--weights", "uniform:5..2"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "must exit 1, not panic");
    assert!(stderr(&out).contains("invalid --weights range"));

    // Unknown protocol.
    let out = slb(&[
        "simulate",
        "--family",
        "ring",
        "--n",
        "4",
        "--protocol",
        "teleport",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown protocol"));
}

#[test]
fn simulate_smoke_run_reaches_nash() {
    let out = slb(&[
        "simulate",
        "--family",
        "ring",
        "--n",
        "8",
        "--tasks-per-node",
        "8",
        "--protocol",
        "alg1",
        "--until",
        "nash",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("instance : ring(n=8), m = 64"),
        "stdout: {text}"
    );
    assert!(text.contains("condition met"), "stdout: {text}");
}

#[test]
fn spectral_smoke_run_prints_lambda2() {
    let out = slb(&[
        "spectral", "--family", "torus", "--rows", "3", "--cols", "4",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("λ₂ closed"), "stdout: {text}");
    assert!(text.contains("λ₂ numeric"), "stdout: {text}");
    assert!(text.contains("diameter"), "stdout: {text}");
}

#[test]
fn bounds_smoke_run_prints_theorem_bounds() {
    let out = slb(&[
        "bounds",
        "--family",
        "hypercube",
        "--d",
        "3",
        "--tasks-per-node",
        "16",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Thm 1.1"), "stdout: {text}");
    assert!(text.contains("ψ_c"), "stdout: {text}");
}

/// The pinned small-sweep invocation behind `tests/golden/sweep_small.csv`
/// (also run by CI's smoke-sweep step). One grid covering all five
/// protocols and both uniform/weighted task modes.
const GOLDEN_SWEEP_ARGS: &[&str] = &[
    "sweep",
    "graph=ring:6",
    "tasks-per-node=8",
    "weights=unit,uniform:0.2..0.9",
    "protocol=alg1,alg2,bhs,diffusion,best-response",
    "until=quiescent:20",
    "--trials",
    "2",
    "--max-rounds",
    "5000",
    "--seed",
    "42",
];

const SWEEP_CSV_HEADER: &str = "cell,graph,n,m,protocol,engine,speeds,weights,placement,until,\
                                arrivals,completions,churn,speed-dyn,trials,base_seed,max_rounds,\
                                reached_fraction,rounds_mean,rounds_std,rounds_min,rounds_median,\
                                rounds_max,migrations_mean,psi0_final_mean,nash_gap_tavg_mean,\
                                recovery_rounds_mean,unrecovered_trials";

#[test]
fn sweep_emits_exact_csv_schema() {
    let out = slb(&["sweep", "graph=ring:4", "trials=1", "--max-rounds", "2000"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.lines().next().unwrap(), SWEEP_CSV_HEADER);
    assert_eq!(text.lines().count(), 2, "one cell → header + one row");
}

#[test]
fn sweep_matches_golden_file_at_any_thread_count() {
    let golden = include_str!("golden/sweep_small.csv");
    for threads in ["1", "8", "64"] {
        let mut args = GOLDEN_SWEEP_ARGS.to_vec();
        args.extend(["--threads", threads]);
        let out = slb(&args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        assert_eq!(
            stdout(&out),
            golden,
            "sweep CSV at --threads {threads} diverges from tests/golden/sweep_small.csv \
             (same spec + seed must be byte-identical)"
        );
        // Every cell executed on a real engine: no skipped-cell warning.
        assert!(
            stderr(&out).is_empty(),
            "unexpected stderr: {}",
            stderr(&out)
        );
    }
}

#[test]
fn golden_sweep_covers_all_protocols_and_task_modes() {
    let golden = include_str!("golden/sweep_small.csv");
    for protocol in ["alg1", "alg2", "bhs", "diffusion", "best-response"] {
        assert!(
            golden.lines().any(|l| l.contains(&format!(",{protocol},"))),
            "golden sweep misses protocol {protocol}"
        );
    }
    assert!(golden.contains(",unit,"));
    assert!(golden.contains(",uniform:0.2..0.9,"));
    // Algorithm 1 on weighted tasks executes on the weight-class engine —
    // no zeroed `unsupported` rows remain anywhere in the grid.
    assert_eq!(golden.matches(",unsupported,").count(), 0);
    // The speed-aware protocols run count-based in both task modes: no
    // alg2/bhs cell falls back to the per-task engine.
    assert_eq!(golden.matches(",parallel-chunked,").count(), 0);
    for line in golden
        .lines()
        .filter(|l| l.contains(",alg2,") || l.contains(",bhs,"))
    {
        assert!(line.contains(",speed-fast,"), "row: {line}");
    }
    let alg1_weighted = golden
        .lines()
        .find(|l| l.contains(",alg1,") && l.contains(",uniform:0.2..0.9,"))
        .expect("golden sweep has the alg1 × weighted cell");
    assert!(
        alg1_weighted.contains(",weighted-fast,"),
        "row: {alg1_weighted}"
    );
    // The row carries real measurements: 2 trials and a reached fraction
    // of 1, not the zeroed placeholder it used to be.
    let fields: Vec<&str> = alg1_weighted.split(',').collect();
    assert_eq!(fields[14], "2", "trials column: {alg1_weighted}");
    assert_eq!(fields[17], "1", "reached_fraction column: {alg1_weighted}");
    assert_ne!(fields[23], "0", "migrations_mean column: {alg1_weighted}");
    // Static cells carry the `none` dynamic axes and zeroed steady-state
    // metrics.
    assert_eq!(&fields[10..14], &["none", "none", "none", "none"]);
    assert_eq!(fields[25], "0", "nash_gap_tavg column: {alg1_weighted}");
    assert_eq!(fields[26], "0", "recovery_rounds column: {alg1_weighted}");
    assert_eq!(
        fields[27], "0",
        "unrecovered_trials column: {alg1_weighted}"
    );
}

/// The pinned dynamic-sweep invocation behind
/// `tests/golden/sweep_dynamic.csv`: arrivals × completions × churn ×
/// {drift, shock} on both threshold rules, run for a fixed horizon.
const GOLDEN_DYNAMIC_SWEEP_ARGS: &[&str] = &[
    "sweep",
    "graph=ring:16",
    "tasks-per-node=8",
    "protocol=alg1,alg2",
    "arrivals=poisson:0.5",
    "completions=rate:0.05",
    "churn=rate:0.02",
    "speed-dyn=drift:0.1,shock:150:0.25",
    "--trials",
    "2",
    "--max-rounds",
    "300",
    "--seed",
    "7",
];

#[test]
fn dynamic_sweep_matches_golden_file_at_any_thread_count() {
    let golden = include_str!("golden/sweep_dynamic.csv");
    for threads in ["1", "8", "64"] {
        let mut args = GOLDEN_DYNAMIC_SWEEP_ARGS.to_vec();
        args.extend(["--threads", threads]);
        let out = slb(&args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        assert_eq!(
            stdout(&out),
            golden,
            "dynamic sweep CSV at --threads {threads} diverges from \
             tests/golden/sweep_dynamic.csv (same spec + seed must be byte-identical)"
        );
        assert!(
            stderr(&out).is_empty(),
            "unexpected stderr: {}",
            stderr(&out)
        );
    }
}

#[test]
fn golden_dynamic_sweep_carries_steady_state_metrics() {
    let golden = include_str!("golden/sweep_dynamic.csv");
    assert_eq!(golden.lines().next().unwrap(), SWEEP_CSV_HEADER);
    // 2 protocols × 2 speed-dyn values, all on the dynamic engine.
    assert_eq!(golden.lines().count(), 5);
    assert_eq!(golden.matches(",dynamic,").count(), 4);
    for line in golden.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[10], "poisson:0.5", "row: {line}");
        assert_eq!(fields[11], "rate:0.05", "row: {line}");
        assert_eq!(fields[12], "rate:0.02", "row: {line}");
        // Fixed horizon: every trial runs exactly max-rounds and counts
        // as reached.
        assert_eq!(fields[17], "1", "reached_fraction: {line}");
        assert_eq!(fields[18], "300", "rounds_mean: {line}");
        // The steady-state gap is open under sustained arrivals.
        assert_ne!(fields[25], "0", "nash_gap_tavg_mean: {line}");
        if fields[13].starts_with("shock:") {
            // The mean averages recovered trials only; trials that never
            // re-close the gap are counted, not folded into the mean.
            assert!(
                fields[26] != "0" || fields[27] == "2",
                "shock row must either recover or censor: {line}"
            );
        } else {
            assert_eq!(fields[26], "0", "recovery_rounds_mean: {line}");
            assert_eq!(fields[27], "0", "unrecovered_trials: {line}");
        }
    }
}

/// The pinned serve invocation behind `tests/golden/serve_small.csv`
/// (also run by CI's smoke-serve step): all six routing policies over a
/// small two-speed ring under mixed open- and closed-loop traffic, with
/// a warm-up excluded from the measurement window.
const GOLDEN_SERVE_ARGS: &[&str] = &[
    "serve",
    "graph=ring:8",
    "speeds=alternating:2",
    "weights=uniform:0.5..1",
    "traffic=poisson:4",
    "closed=2:1.0",
    "horizon=30",
    "--shift",
    "-20",
    "--seed",
    "42",
];

/// The pinned degraded-mode invocation behind `tests/golden/serve_faults.csv`
/// (also run by CI's smoke-serve-faults step): the same ring under a heavier
/// open-loop stream with crashing backends, a stale lossy load view, and
/// bounded retry/backoff routing.
const GOLDEN_SERVE_FAULTS_ARGS: &[&str] = &[
    "serve",
    "graph=ring:8",
    "speeds=alternating:2",
    "weights=uniform:0.5..1",
    "traffic=poisson:6",
    "faults=crash:6:2",
    "signal=stale:0.5+loss:0.1",
    "retry=max:3:base:0.25",
    "horizon=30",
    "--shift",
    "-20",
    "--seed",
    "42",
];

const SERVE_CSV_HEADER: &str = "policy,graph,n,speeds,weights,traffic,closed,faults,signal,retry,\
                                horizon,shift,base_seed,jobs_offered,jobs_completed,failed_jobs,\
                                retries_mean,availability,throughput,latency_count,latency_mean,\
                                latency_p50,latency_p95,latency_p99,util_mean,util_min,util_max,\
                                nash_gap,nash_gap_live";

#[test]
fn serve_matches_golden_file_at_any_thread_count() {
    let golden = include_str!("golden/serve_small.csv");
    for threads in ["1", "8", "64"] {
        let mut args = GOLDEN_SERVE_ARGS.to_vec();
        args.extend(["--threads", threads]);
        let out = slb(&args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        assert_eq!(
            stdout(&out),
            golden,
            "serve CSV at --threads {threads} diverges from tests/golden/serve_small.csv \
             (same spec + seed must be byte-identical)"
        );
        assert!(
            stderr(&out).is_empty(),
            "unexpected stderr: {}",
            stderr(&out)
        );
    }
}

#[test]
fn serve_faults_matches_golden_file_at_any_thread_count() {
    let golden = include_str!("golden/serve_faults.csv");
    for threads in ["1", "8", "64"] {
        let mut args = GOLDEN_SERVE_FAULTS_ARGS.to_vec();
        args.extend(["--threads", threads]);
        let out = slb(&args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        assert_eq!(
            stdout(&out),
            golden,
            "fault-sweep CSV at --threads {threads} diverges from \
             tests/golden/serve_faults.csv (faults, probe loss, and retry \
             jitter must all replay deterministically)"
        );
    }
}

#[test]
fn golden_serve_covers_every_policy_with_live_metrics() {
    let golden = include_str!("golden/serve_small.csv");
    assert_eq!(golden.lines().next().unwrap(), SERVE_CSV_HEADER);
    // Header + one row per policy, in the canonical order.
    assert_eq!(golden.lines().count(), 7);
    let policies = [
        "alg1",
        "alg2",
        "bhs",
        "round-robin",
        "greedy-least-loaded",
        "bandwidth-softmax",
    ];
    for (line, policy) in golden.lines().skip(1).zip(policies) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[0], policy, "row: {line}");
        // The degradation axes are off, and say so in every row.
        assert_eq!(fields[7], "none", "faults: {line}");
        assert_eq!(fields[8], "none", "signal: {line}");
        assert_eq!(fields[9], "none", "retry: {line}");
        assert_eq!(fields[15], "0", "failed_jobs: {line}");
        assert_eq!(fields[16], "0", "retries_mean: {line}");
        assert_eq!(fields[17], "1", "availability: {line}");
        // Every policy routed real work: completions, throughput, and a
        // latency sample are all live, and utilization stays a fraction.
        assert_ne!(fields[14], "0", "jobs_completed: {line}");
        assert_ne!(fields[18], "0", "throughput: {line}");
        assert_ne!(fields[19], "0", "latency_count: {line}");
        assert_ne!(fields[20], "0", "latency_mean: {line}");
        let util_max: f64 = fields[26].parse().unwrap();
        assert!(
            util_max > 0.0 && util_max <= 1.0,
            "util_max out of range: {line}"
        );
        // With perfect information the live gap is the plain gap.
        assert_eq!(fields[27], fields[28], "nash_gap vs nash_gap_live: {line}");
    }
}

#[test]
fn golden_serve_faults_shares_the_scenario_across_policies() {
    let golden = include_str!("golden/serve_faults.csv");
    assert_eq!(golden.lines().next().unwrap(), SERVE_CSV_HEADER);
    assert_eq!(golden.lines().count(), 7);
    let mut availabilities = Vec::new();
    for line in golden.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        // Degraded rows carry their own provenance.
        assert_eq!(fields[7], "crash:6:2", "faults: {line}");
        assert_eq!(fields[8], "stale:0.5+loss:0.1", "signal: {line}");
        assert_eq!(fields[9], "max:3:base:0.25", "retry: {line}");
        let availability: f64 = fields[17].parse().unwrap();
        assert!(
            availability > 0.0 && availability < 1.0,
            "crashes must cost some uptime: {line}"
        );
        availabilities.push(fields[17]);
        // Conservation at the artifact level: nothing silently dropped.
        let offered: u64 = fields[13].parse().unwrap();
        let failed: u64 = fields[15].parse().unwrap();
        assert!(failed < offered, "failed_jobs out of range: {line}");
    }
    // The fault schedule is scenario-seeded: every policy row must report
    // the exact same availability because they rode the same crashes.
    assert!(
        availabilities.windows(2).all(|w| w[0] == w[1]),
        "availability differs across policies: {availabilities:?}"
    );
}

#[test]
fn serve_rejects_malformed_specs_with_exit_one() {
    for (args, needle) in [
        (&["serve", "graph=blob:4"][..], "unknown graph family"),
        (&["serve", "policy=teleport"], "unknown policy"),
        (&["serve", "horizon=0"], "must be positive"),
        (&["serve", "traffic=poisson:-1"], "rate"),
        (&["serve", "traffic=none"], "traffic source"),
        (&["serve", "closed=0:1"], "at least one user"),
        (&["serve", "bogus=1"], "unknown serve key"),
        (&["serve", "horizon=5", "horizon=6"], "given twice"),
        (&["serve", "faults=crash:"], "invalid faults"),
        (&["serve", "faults=crash:0:2"], "mttf"),
        (&["serve", "faults=crash:6:2", "faults=none"], "given twice"),
        (&["serve", "signal=stale:-1"], "staleness"),
        (&["serve", "signal=loss:0.5"], "probe interval"),
        (&["serve", "signal=stale:1+stale:2"], "twice"),
        (&["serve", "retry=max:0:base:1"], "at least one"),
        (&["serve", "retry=max:99:base:1"], "stride"),
        (
            &["serve", "horizon=5", "--shift", "-9"],
            "measurement window",
        ),
        (&["serve", "--format", "xml"], "unknown format"),
        (&["serve", "--threads", "0"], "must be positive"),
        (&["serve", "--seeed", "7"], "unknown flag --seeed"),
    ] {
        let out = slb(args);
        assert_eq!(
            out.status.code(),
            Some(1),
            "`slb {args:?}` must exit 1, not panic"
        );
        assert!(
            stderr(&out).contains(needle),
            "`slb {args:?}` stderr misses `{needle}`: {}",
            stderr(&out)
        );
    }
}

#[test]
fn sweep_rejects_malformed_grids_with_exit_one() {
    for (args, needle) in [
        (&["sweep", "graph=blob:4"][..], "unknown graph family"),
        (&["sweep", "graph=ring"], "needs parameters"),
        (&["sweep", "graph=torus:4"], "RxC"),
        (&["sweep", "bogus=1"], "unknown grid key"),
        (&["sweep", "trials=0"], "must be positive"),
        (&["sweep", "protocol=teleport"], "unknown protocol"),
        (&["sweep", "until=eventually"], "unknown stop rule"),
        (&["sweep", "trials=1", "trials=2"], "given twice"),
        (&["sweep", "placement=node:99"], "out of range"),
        (&["sweep", "--format", "xml"], "unknown format"),
        (&["sweep", "--threads", "0"], "must be positive"),
        // Syntactically valid grids with invalid distribution/graph
        // parameters must also exit 1, not panic in a worker thread.
        (&["sweep", "graph=hypercube:0"], "hypercube dimension"),
        (&["sweep", "graph=hypercube:64"], "hypercube dimension"),
        (&["sweep", "speeds=two-class:0:0.5"], "fast speed"),
        (&["sweep", "speeds=integer:0"], "at least 1"),
        (&["sweep", "weights=power-law:0:0.1"], "alpha"),
        // Dynamic-axis grammar errors.
        (&["sweep", "arrivals=sometimes"], "unknown arrivals"),
        (&["sweep", "arrivals=poisson:-1"], "arrival rate"),
        (&["sweep", "arrivals=batch:0:5"], "batch size"),
        (&["sweep", "completions=rate:1.5"], "completion rate"),
        (&["sweep", "churn=rate:2"], "churn rate"),
        (&["sweep", "speed-dyn=drift:0"], "drift sigma"),
        (&["sweep", "speed-dyn=shock:10:1.5"], "shock fraction"),
        // Sequential protocols have no dynamic engine.
        (
            &["sweep", "protocol=diffusion", "arrivals=poisson:0.5"],
            "no dynamic-scenario engine",
        ),
        // Misspelled flags are rejected, not silently ignored.
        (
            &["sweep", "graph=ring:4", "--seeed", "7"],
            "unknown flag --seeed",
        ),
        // trials/max-rounds as both grid token and flag is ambiguous.
        (
            &["sweep", "trials=5", "--trials", "2", "graph=ring:4"],
            "given both as a grid token",
        ),
        (
            &["sweep", "max-rounds=10", "--max-rounds", "20"],
            "given both as a grid token",
        ),
    ] {
        let out = slb(args);
        assert_eq!(
            out.status.code(),
            Some(1),
            "`slb {args:?}` must exit 1, not panic"
        );
        assert!(
            stderr(&out).contains(needle),
            "`slb {args:?}` stderr misses `{needle}`: {}",
            stderr(&out)
        );
    }
}

#[test]
fn sweep_json_format_and_out_file() {
    let out = slb(&[
        "sweep",
        "graph=ring:4",
        "trials=1",
        "--max-rounds",
        "2000",
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.starts_with("[\n"), "json: {text}");
    assert!(text.contains("\"graph\":\"ring:4\""));
    assert!(text.trim_end().ends_with(']'));

    // --out writes the same artifact to a file and stays silent.
    let path = std::env::temp_dir().join("slb_sweep_out_test.csv");
    let path_str = path.to_str().unwrap();
    let out = slb(&[
        "sweep",
        "graph=ring:4",
        "trials=1",
        "--max-rounds",
        "2000",
        "--out",
        path_str,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).is_empty());
    let written = std::fs::read_to_string(&path).unwrap();
    assert_eq!(written.lines().next().unwrap(), SWEEP_CSV_HEADER);
    std::fs::remove_file(&path).ok();
}

/// The pinned small-ladder invocation behind
/// `tests/golden/validate_small.md` (also run by CI's smoke-validate
/// step). One tiny ring ladder covering all five protocols and both
/// theorem regimes, including a censored row (diffusion never reaches an
/// exact NE — its rounded flows stall — and the report must say so
/// rather than fabricate a fit).
const GOLDEN_VALIDATE_ARGS: &[&str] = &[
    "validate",
    "family=ring",
    "n=4,8",
    "load=8",
    "protocol=alg1,alg2,bhs,diffusion,best-response",
    "regime=approx,exact",
    "trials=2",
    "--max-rounds",
    "4000",
    "--seed",
    "42",
];

const VALIDATE_CSV_HEADER: &str = "row,protocol,family,regime,load,n_ladder,trials,base_seed,\
                                   max_rounds,eps,factor,exp_tol,exponent,ci_lo,ci_hi,r_squared,\
                                   pred_ladder,pred_asym,source,exponent_ok,max_bound_ratio,\
                                   bound_ok,gap_ok,reached_min";

#[test]
fn validate_matches_golden_file_at_any_thread_count() {
    let golden = include_str!("golden/validate_small.md");
    for threads in ["1", "8", "64"] {
        let mut args = GOLDEN_VALIDATE_ARGS.to_vec();
        args.extend(["--threads", threads]);
        let out = slb(&args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        assert_eq!(
            stdout(&out),
            golden,
            "validate report at --threads {threads} diverges from \
             tests/golden/validate_small.md (same spec + seed must be byte-identical)"
        );
    }
}

#[test]
fn golden_validate_covers_all_protocols_and_both_regimes() {
    let golden = include_str!("golden/validate_small.md");
    for protocol in ["alg1", "alg2", "bhs", "diffusion", "best-response"] {
        for regime in ["approx", "exact"] {
            assert!(
                golden.lines().any(|l| l.contains(&format!("| {protocol} "))
                    && l.contains(&format!("| {regime} "))),
                "golden validate misses {protocol} × {regime}"
            );
        }
    }
    // The conformance columns are present and every checked row conforms.
    assert!(golden.contains("exponent_ok"));
    assert!(golden.contains("gap_ok"));
    assert!(golden.contains("verdict: 6/6 checked rows conform (10 rows total)"));
    // The censored diffusion × exact row reports reached_min 0, not a fit.
    assert!(
        golden.lines().any(|l| l.contains("| diffusion ")
            && l.contains("| exact ")
            && l.trim_end().ends_with("| 0           |")),
        "censored diffusion row must be visible"
    );
}

#[test]
fn validate_report_formats_and_out_file() {
    let out = slb(&[
        "validate",
        "n=4,8",
        "load=4",
        "trials=1",
        "--max-rounds",
        "2000",
        "--report",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.lines().next().unwrap(), VALIDATE_CSV_HEADER);
    assert_eq!(text.lines().count(), 2, "one row → header + one line");

    let out = slb(&[
        "validate",
        "n=4,8",
        "load=4",
        "trials=1",
        "--max-rounds",
        "2000",
        "--report",
        "json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.starts_with("[\n"), "json: {text}");
    assert!(text.contains("\"points\":["));
    assert!(text.trim_end().ends_with(']'));

    // --out writes the same artifact to a file and stays silent.
    let path = std::env::temp_dir().join("slb_validate_out_test.md");
    let path_str = path.to_str().unwrap();
    let out = slb(&[
        "validate",
        "n=4,8",
        "load=4",
        "trials=1",
        "--max-rounds",
        "2000",
        "--out",
        path_str,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).is_empty());
    let written = std::fs::read_to_string(&path).unwrap();
    assert!(written.starts_with("# Theorem-validation report"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn validate_rejects_malformed_ladders_with_exit_one() {
    for (args, needle) in [
        (&["validate", "family=blob"][..], "unknown family"),
        (&["validate", "family=ring:8"], "unknown family"),
        (&["validate", "n=8"], "at least two sizes"),
        (&["validate", "n=32,16"], "strictly increasing"),
        (&["validate", "n=8..64"], "needs a multiplier"),
        (&["validate", "load=delta:0"], "load delta"),
        (&["validate", "regime=sometime"], "unknown regime"),
        (&["validate", "eps=2"], "eps must lie"),
        (&["validate", "exp-tol=-1"], "exp-tol"),
        (&["validate", "family=hypercube", "n=8,12"], "no 12-node"),
        (&["validate", "--report", "xml"], "unknown report format"),
        (&["validate", "--threads", "0"], "must be positive"),
        (
            &["validate", "n=4,8", "--seeed", "7"],
            "unknown flag --seeed",
        ),
        (
            &["validate", "trials=5", "--trials", "2"],
            "given both as a ladder token",
        ),
    ] {
        let out = slb(args);
        assert_eq!(
            out.status.code(),
            Some(1),
            "`slb {args:?}` must exit 1, not panic"
        );
        assert!(
            stderr(&out).contains(needle),
            "`slb {args:?}` stderr misses `{needle}`: {}",
            stderr(&out)
        );
    }
}

#[test]
fn deterministic_given_a_seed() {
    let args = [
        "simulate",
        "--family",
        "ring",
        "--n",
        "6",
        "--tasks-per-node",
        "4",
        "--until",
        "nash",
        "--seed",
        "123",
    ];
    let a = slb(&args);
    let b = slb(&args);
    assert!(a.status.success());
    assert_eq!(stdout(&a), stdout(&b), "same seed must reproduce the run");
}
