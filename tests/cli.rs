//! End-to-end tests of the `slb` binary: exit codes and usage output for
//! bad invocations, plus one smoke run per subcommand.

use std::process::{Command, Output};

fn slb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slb"))
        .args(args)
        .output()
        .expect("failed to launch slb")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = slb(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE:"), "stderr: {}", stderr(&out));
}

#[test]
fn help_succeeds_and_prints_usage() {
    for flag in ["--help", "-h", "help"] {
        let out = slb(&[flag]);
        assert!(out.status.success(), "`slb {flag}` must exit zero");
        assert!(stdout(&out).contains("USAGE:"));
        assert!(stdout(&out).contains("simulate"));
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = slb(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown command"), "stderr: {err}");
    assert!(err.contains("USAGE:"));
}

#[test]
fn bad_flag_values_fail_nonzero() {
    // Non-flag argument where a flag is expected.
    let out = slb(&["simulate", "oops"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("expected --flag"));

    // Flag missing its value.
    let out = slb(&["simulate", "--n"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("needs a value"));

    // Unparsable numeric value.
    let out = slb(&["simulate", "--n", "many"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("invalid value"));

    // Unknown topology family.
    let out = slb(&["spectral", "--family", "blob"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown family"));

    // Inverted weights range must fail cleanly, not panic.
    let out = slb(&["simulate", "--n", "4", "--weights", "uniform:5..2"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "must exit 1, not panic");
    assert!(stderr(&out).contains("invalid --weights range"));

    // Unknown protocol.
    let out = slb(&[
        "simulate",
        "--family",
        "ring",
        "--n",
        "4",
        "--protocol",
        "teleport",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown protocol"));
}

#[test]
fn simulate_smoke_run_reaches_nash() {
    let out = slb(&[
        "simulate",
        "--family",
        "ring",
        "--n",
        "8",
        "--tasks-per-node",
        "8",
        "--protocol",
        "alg1",
        "--until",
        "nash",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("instance : ring(n=8), m = 64"),
        "stdout: {text}"
    );
    assert!(text.contains("condition met"), "stdout: {text}");
}

#[test]
fn spectral_smoke_run_prints_lambda2() {
    let out = slb(&[
        "spectral", "--family", "torus", "--rows", "3", "--cols", "4",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("λ₂ closed"), "stdout: {text}");
    assert!(text.contains("λ₂ numeric"), "stdout: {text}");
    assert!(text.contains("diameter"), "stdout: {text}");
}

#[test]
fn bounds_smoke_run_prints_theorem_bounds() {
    let out = slb(&[
        "bounds",
        "--family",
        "hypercube",
        "--d",
        "3",
        "--tasks-per-node",
        "16",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Thm 1.1"), "stdout: {text}");
    assert!(text.contains("ψ_c"), "stdout: {text}");
}

#[test]
fn deterministic_given_a_seed() {
    let args = [
        "simulate",
        "--family",
        "ring",
        "--n",
        "6",
        "--tasks-per-node",
        "4",
        "--until",
        "nash",
        "--seed",
        "123",
    ];
    let a = slb(&args);
    let b = slb(&args);
    assert!(a.status.success());
    assert_eq!(stdout(&a), stdout(&b), "same seed must reproduce the run");
}
