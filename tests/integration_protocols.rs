//! Cross-crate integration: end-to-end protocol runs on every Table 1
//! family, checked against the model invariants and the theory layer.

use selfish_load_balancing::prelude::*;

fn uniform_instance(family: generators::Family, tasks_per_node: usize) -> (System, TaskState) {
    let graph = family.build();
    let n = graph.node_count();
    let system = System::new(
        graph,
        SpeedVector::uniform(n),
        TaskSet::uniform(n * tasks_per_node),
    )
    .expect("valid instance");
    let initial = TaskState::all_on_node(&system, NodeId(0));
    (system, initial)
}

#[test]
fn algorithm_1_reaches_nash_on_every_table1_family() {
    for family in [
        generators::Family::Complete { n: 8 },
        generators::Family::Ring { n: 8 },
        generators::Family::Path { n: 8 },
        generators::Family::Mesh { rows: 3, cols: 3 },
        generators::Family::Torus { rows: 3, cols: 3 },
        generators::Family::Hypercube { d: 3 },
    ] {
        let (system, initial) = uniform_instance(family, 10);
        let mut sim = Simulation::new(&system, SelfishUniform::new(), initial, 0xAB);
        let outcome = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 200_000);
        assert_eq!(
            outcome.reason,
            StopReason::ConditionMet,
            "{family}: no Nash equilibrium within budget"
        );
        sim.state().check_invariants(&system).unwrap();
        assert!(equilibrium::is_nash(
            &system,
            sim.state(),
            Threshold::UnitWeight
        ));
    }
}

#[test]
fn measured_approx_time_respects_theorem_1_1_bound() {
    for family in [
        generators::Family::Ring { n: 16 },
        generators::Family::Hypercube { d: 4 },
        generators::Family::Complete { n: 16 },
    ] {
        let cell = measure_uniform_convergence(
            family,
            32,
            Target::ApproxPsi0,
            TrialConfig::sequential(3, 7),
            1_000_000,
        );
        assert_eq!(cell.reached_fraction, 1.0, "{family} did not converge");
        let bound = theory::thm11_expected_rounds(&cell.instance);
        assert!(
            cell.rounds.mean <= bound,
            "{family}: measured {} exceeds Theorem 1.1 bound {bound}",
            cell.rounds.mean
        );
    }
}

#[test]
fn exact_nash_time_respects_theorem_1_2_bound_with_speeds() {
    use selfish_load_balancing::core::engine::uniform_fast::{CountState, UniformFastSim};
    let family = generators::Family::Ring { n: 8 };
    let graph = family.build();
    let n = graph.node_count();
    let m = 24 * n;
    let speeds = SpeedVector::integer((0..n as u64).map(|i| 1 + i % 3).collect()).unwrap();
    let inst = theory::Instance {
        n,
        total_work: m as f64,
        max_degree: graph.max_degree(),
        lambda2: closed_form::lambda2_family(family),
        s_min: speeds.min(),
        s_max: speeds.max(),
        s_total: speeds.total(),
        granularity: Some(1.0),
    };
    let bound = theory::thm12_expected_rounds(&inst).unwrap();
    let system = System::new(graph, speeds, TaskSet::uniform(m)).unwrap();
    let mut sim = UniformFastSim::new(
        &system,
        Alpha::Exact,
        CountState::all_on_node(n, 0, m as u64),
        3,
    );
    let outcome = sim.run_until_nash(bound as u64 + 1);
    assert!(outcome.reached, "exceeded the Theorem 1.2 bound");
    assert!((outcome.rounds as f64) < bound);
}

#[test]
fn weighted_protocols_agree_on_conservation_and_targets() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let graph = generators::torus(3, 3);
    let n = graph.node_count();
    let m = 30 * n;
    let weights: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..=1.0)).collect();
    let total: f64 = weights.iter().sum();
    let system = System::new(
        graph,
        SpeedVector::integer(vec![1, 2, 1, 2, 1, 2, 1, 2, 1]).unwrap(),
        TaskSet::weighted(weights).unwrap(),
    )
    .unwrap();
    let initial = TaskState::all_on_node(&system, NodeId(4));

    for seed in [1u64, 2, 3] {
        let mut alg2 = Simulation::new(&system, SelfishWeighted::new(), initial.clone(), seed);
        alg2.run(500);
        alg2.state().check_invariants(&system).unwrap();
        let sum: f64 = alg2.state().node_weights().iter().sum();
        assert!((sum - total).abs() < 1e-6);

        let mut bhs = Simulation::new(&system, BhsBaseline::new(), initial.clone(), seed);
        bhs.run(500);
        bhs.state().check_invariants(&system).unwrap();
    }
}

#[test]
fn sequential_and_parallel_engines_agree_with_chunked_reference() {
    use selfish_load_balancing::core::engine::parallel::sequential_chunked_round;
    let (system, initial) = uniform_instance(generators::Family::Hypercube { d: 4 }, 50);
    let mut par = ParallelSimulation::with_layout(
        &system,
        SelfishUniform::new(),
        initial.clone(),
        99,
        1024,
        3,
    );
    let mut reference = initial;
    for round in 0..15u64 {
        par.step();
        sequential_chunked_round(
            &system,
            &SelfishUniform::new(),
            &mut reference,
            99,
            round,
            1024,
        );
    }
    assert_eq!(par.state(), &reference);
}

#[test]
fn fast_path_and_task_level_hit_similar_convergence_times() {
    // Same protocol, two implementations: the count-based path's mean
    // convergence time must sit near the task-level one.
    let family = generators::Family::Ring { n: 8 };
    let tasks_per_node = 32;
    let fast = measure_uniform_convergence(
        family,
        tasks_per_node,
        Target::ApproxPsi0,
        TrialConfig::sequential(5, 11),
        1_000_000,
    );

    let (system, initial) = uniform_instance(family, tasks_per_node);
    let psi_target = 4.0 * theory::psi_c(&fast.instance);
    let mut task_rounds = Vec::new();
    for seed in 0..5u64 {
        let mut sim = Simulation::new(&system, SelfishUniform::new(), initial.clone(), seed);
        let o = sim.run_until(StopCondition::Psi0Below(psi_target), 1_000_000);
        assert_eq!(o.reason, StopReason::ConditionMet);
        task_rounds.push(o.rounds as f64);
    }
    let task_mean = task_rounds.iter().sum::<f64>() / task_rounds.len() as f64;
    let ratio = fast.rounds.mean / task_mean;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "fast path {} vs task level {task_mean} (ratio {ratio})",
        fast.rounds.mean
    );
}

#[test]
fn diffusion_is_deterministic_and_conserving_end_to_end() {
    let (system, initial) = uniform_instance(generators::Family::Torus { rows: 4, cols: 4 }, 64);
    let run = |seed: u64| {
        let mut sim = Simulation::new(&system, Diffusion::new(), initial.clone(), seed);
        sim.run(300);
        sim.into_state()
    };
    let a = run(1);
    let b = run(999);
    assert_eq!(a, b, "diffusion must ignore the RNG");
    a.check_invariants(&system).unwrap();
}

#[test]
fn scenario_presets_run_end_to_end() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let built = scenario::p2p_overlay(16, 12, &mut rng).unwrap();
    let mut sim = Simulation::new(
        &built.system,
        SelfishUniform::new(),
        built.initial.clone(),
        3,
    );
    let o = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 100_000);
    assert_eq!(o.reason, StopReason::ConditionMet);

    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let built = scenario::adversarial_ring(8, 3, 20, &mut rng).unwrap();
    let mut sim = Simulation::new(
        &built.system,
        SelfishUniform::new(),
        built.initial.clone(),
        4,
    );
    let o = sim.run_until(
        StopCondition::EpsNash {
            threshold: Threshold::UnitWeight,
            eps: 0.5,
        },
        200_000,
    );
    assert_eq!(o.reason, StopReason::ConditionMet);
}
