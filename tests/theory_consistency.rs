//! Theory-vs-simulation consistency: the quantities the paper's proofs
//! manipulate, cross-checked numerically end to end.

use rand::SeedableRng;
use selfish_load_balancing::prelude::*;
use selfish_load_balancing::spectral::generalized;

/// Lemma 3.6(2): `Ψ₀(x) = ⟨e, e⟩_S` — the potential equals the generalized
/// self-inner-product of the deviation vector.
#[test]
fn psi0_equals_generalized_inner_product() {
    let graph = generators::torus(3, 4);
    let n = graph.node_count();
    let speeds = SpeedVector::integer((0..n as u64).map(|i| 1 + i % 3).collect()).unwrap();
    let system = System::new(graph, speeds, TaskSet::uniform(60)).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let state = Placement::UniformRandom.state(&system, &mut rng);

    let psi0 = potential::report(&system, &state).psi0;
    let e = state.deviations(&system);
    let sdot = generalized::sdot(&e, &e, system.speeds().as_slice());
    assert!((psi0 - sdot).abs() < 1e-9, "{psi0} vs {sdot}");
    // ⟨e, s⟩_S = Σ e_i = 0 (the proof of Lemma 3.10's precondition).
    let against_speed =
        generalized::sdot(&e, system.speeds().as_slice(), system.speeds().as_slice());
    assert!(against_speed.abs() < 1e-9);
}

/// The expected drop bound of Lemma 3.10, checked empirically: averaging
/// the one-round drop of Ψ₀ over many seeds from a fixed state must
/// dominate `λ₂/(16Δ)·Ψ₀/s_max² − n/(4·s_max)`.
#[test]
fn lemma_3_10_expected_drop_bound() {
    let graph = generators::ring(8);
    let n = graph.node_count();
    let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(200)).unwrap();
    let initial = TaskState::all_on_node(&system, NodeId(0));
    let psi_before = potential::report(&system, &initial).psi0;

    let trials = 400;
    let mut total_after = 0.0;
    for seed in 0..trials {
        let mut sim = Simulation::new(&system, SelfishUniform::new(), initial.clone(), seed);
        sim.step();
        total_after += potential::report(&system, sim.state()).psi0;
    }
    let mean_drop = psi_before - total_after / trials as f64;

    let lambda2 = closed_form::lambda2_ring(n);
    let delta = 2.0;
    let s_max = 1.0;
    let bound = lambda2 / (16.0 * delta) * psi_before / (s_max * s_max) - n as f64 / (4.0 * s_max);
    assert!(
        mean_drop >= bound,
        "Lemma 3.10 violated: drop {mean_drop} < bound {bound}"
    );
}

/// Lemma 3.21: with granularity ε, any edge violating the migration
/// condition violates it by the quantized margin `1/s_j + ε/(s_i·s_j)`.
#[test]
fn lemma_3_21_quantized_margin() {
    let speeds = SpeedVector::integer(vec![2, 3]).unwrap();
    let graph = generators::path(2);
    let system = System::new(graph, speeds, TaskSet::uniform(9)).unwrap();
    for k in 0..=9usize {
        let assignment: Vec<usize> = (0..9).map(|t| usize::from(t >= k)).collect();
        let state = TaskState::from_assignment(&system, &assignment).unwrap();
        let loads = state.loads(&system);
        for (i, j) in [(0usize, 1usize), (1, 0)] {
            let (s_i, s_j) = (system.speeds().speed(i), system.speeds().speed(j));
            let gap = loads[i] - loads[j];
            if gap > 1.0 / s_j + 1e-12 {
                assert!(
                    gap >= 1.0 / s_j + 1.0 / (s_i * s_j) - 1e-9,
                    "margin violated at split {k}: gap {gap}"
                );
            }
        }
    }
}

/// The expected flow over an edge matches `f_ij` of Definition 3.1 when
/// estimated by Monte Carlo over one round.
#[test]
fn expected_flow_matches_monte_carlo() {
    use selfish_load_balancing::core::protocol::expected_flow;
    let graph = generators::ring(4);
    let system = System::new(graph, SpeedVector::uniform(4), TaskSet::uniform(80)).unwrap();
    let initial = TaskState::from_assignment(
        &system,
        &(0..80).map(|t| usize::from(t >= 60)).collect::<Vec<_>>(),
    )
    .unwrap();
    // Loads: node0 = 60, node1 = 20; edge (0,1) flow expected:
    let alpha = 4.0;
    let d01 = 2;
    let f = expected_flow(d01, 60.0, 20.0, 1.0, 1.0, alpha);

    let trials = 2000;
    let mut moved = 0u64;
    for seed in 0..trials {
        let mut sim = Simulation::new(&system, SelfishUniform::new(), initial.clone(), seed);
        sim.step();
        // Tasks that ended up on node 1 that started on node 0.
        for t in 0..60 {
            if sim.state().task_node(TaskId(t)) == NodeId(1) {
                moved += 1;
            }
        }
    }
    let empirical = moved as f64 / trials as f64;
    let rel_err = (empirical - f).abs() / f;
    assert!(
        rel_err < 0.1,
        "empirical flow {empirical} vs f_ij {f} (rel err {rel_err})"
    );
}

/// Theorem 1.1's ε-approximate claim, end to end: run to `Ψ₀ ≤ 4ψ_c` on an
/// instance with `δ = 2` and verify the reached state is a `2/(1+δ)`-NE.
#[test]
fn theorem_1_1_eps_claim_end_to_end() {
    let family = generators::Family::Ring { n: 6 };
    let graph = family.build();
    let n = graph.node_count();
    let mut inst = theory::Instance::uniform_speeds(
        n,
        0,
        graph.max_degree(),
        closed_form::lambda2_family(family),
    );
    let delta = 2.0;
    let m = theory::m_threshold(&inst, delta).ceil() as usize;
    inst.total_work = m as f64;
    let eps = theory::eps_of_delta(delta);
    let target = 4.0 * theory::psi_c(&inst);

    let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
    let initial = TaskState::all_on_node(&system, NodeId(0));
    let mut sim = Simulation::new(&system, SelfishUniform::new(), initial, 77);
    let o = sim.run_until(StopCondition::Psi0Below(target), 2_000_000);
    assert_eq!(o.reason, StopReason::ConditionMet);
    assert!(
        equilibrium::is_eps_nash(&system, sim.state(), Threshold::UnitWeight, eps),
        "reached state is not a {eps}-approximate NE"
    );
}

/// The count-based fast path and the task-level engine sample the same
/// per-round migration distribution (mean migration count over many
/// one-round trials from the same state).
#[test]
fn fast_path_first_round_distribution() {
    use selfish_load_balancing::core::engine::uniform_fast::{CountState, UniformFastSim};
    let family = generators::Family::Torus { rows: 3, cols: 3 };
    let graph = family.build();
    let n = graph.node_count();
    let m = 45 * n;
    let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
    let initial = TaskState::all_on_node(&system, NodeId(0));

    let trials = 300u64;
    let mut task_total = 0u64;
    for seed in 0..trials {
        let mut sim = Simulation::new(&system, SelfishUniform::new(), initial.clone(), seed);
        task_total += sim.step().migrations as u64;
    }
    let mut fast_total = 0u64;
    for seed in 0..trials {
        let mut sim = UniformFastSim::new(
            &system,
            Alpha::Approximate,
            CountState::all_on_node(n, 0, m as u64),
            seed + 10_000,
        );
        fast_total += sim.step();
    }
    let task_mean = task_total as f64 / trials as f64;
    let fast_mean = fast_total as f64 / trials as f64;
    assert!(
        (task_mean - fast_mean).abs() < 0.1 * task_mean.max(1.0),
        "task-level {task_mean} vs fast {fast_mean}"
    );
}

/// `µ₂` interlacing (Corollary 1.16) holds on the simulation instances and
/// is consistent with the plain `λ₂` used in the theory calculator.
#[test]
fn generalized_spectrum_interlacing_on_instances() {
    for family in [
        generators::Family::Ring { n: 12 },
        generators::Family::Hypercube { d: 4 },
        generators::Family::Complete { n: 10 },
    ] {
        let graph = family.build();
        let n = graph.node_count();
        let speeds: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mu2 = generalized::mu2(&graph, &speeds).unwrap();
        let l2 = closed_form::lambda2_family(family);
        let (smin, smax) = (1.0, 5.0);
        assert!(mu2 >= l2 / smax - 1e-8, "{family}: µ₂ {mu2} < λ₂/s_max");
        assert!(mu2 <= l2 / smin + 1e-8, "{family}: µ₂ {mu2} > λ₂/s_min");
    }
}
