//! # Distributed Selfish Load Balancing with Weights and Speeds
//!
//! A full reproduction of *Adolphs & Berenbrink, "Distributed Selfish Load
//! Balancing with Weights and Speeds"* (PODC 2012, arXiv:1109.6925) as a
//! Rust workspace: the paper's protocols, every substrate they depend on
//! (graphs, spectral theory, workloads), and the experiment harness that
//! regenerates its evaluation.
//!
//! This umbrella crate re-exports the workspace's public API under one
//! root:
//!
//! * [`graphs`] — networks: representation, Table 1 families, traversal,
//!   Cheeger constants ([`slb_graphs`]),
//! * [`spectral`] — Laplacians, `λ₂`, the generalized Laplacian `L·S⁻¹`
//!   and the bounds of Appendix A ([`slb_spectral`]),
//! * [`core`](mod@core) — the model, Algorithms 1 & 2, the \[6\] baseline,
//!   diffusion, potentials, equilibria, and the simulation engines
//!   ([`slb_core`]),
//! * [`workloads`] — placements, weight/speed distributions, scenario
//!   presets, traffic specs ([`slb_workloads`]),
//! * [`serve`] — the in-process service harness behind `slb serve`:
//!   virtual-clock event loop, routing policies ([`slb_serve`]),
//! * [`analysis`] — statistics, the paper's bounds as code, experiment
//!   runners and table rendering ([`slb_analysis`]).
//!
//! # Quickstart
//!
//! ```
//! use selfish_load_balancing::prelude::*;
//!
//! // 16 machines in a torus, two speed classes, 320 unit tasks dumped on
//! // one node; run Algorithm 1 until an exact Nash equilibrium.
//! let system = System::new(
//!     generators::torus(4, 4),
//!     SpeedVector::integer(vec![1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2])?,
//!     TaskSet::uniform(320),
//! )?;
//! let initial = TaskState::all_on_node(&system, NodeId(0));
//! let mut sim = Simulation::new(&system, SelfishUniform::new(), initial, 7);
//! let outcome = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 1_000_000);
//! assert_eq!(outcome.reason, StopReason::ConditionMet);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin` for
//! the paper's tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slb_analysis as analysis;
pub use slb_core as core;
pub use slb_graphs as graphs;
pub use slb_serve as serve;
pub use slb_spectral as spectral;
pub use slb_workloads as workloads;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use slb_analysis::runner::{
        measure_uniform_convergence, run_cell_trials, run_trials, Target, TrialConfig,
    };
    pub use slb_analysis::sweep::{run_sweep, CellResult, SweepConfig, SweepOutcome};
    pub use slb_analysis::theory;
    pub use slb_analysis::validate::{run_validate, RowResult, ValidateConfig, ValidateOutcome};
    pub use slb_core::engine::{
        parallel::ParallelSimulation, recorder::Trace, uniform_fast::UniformFastSim, RunOutcome,
        Simulation, StopCondition, StopReason,
    };
    pub use slb_core::equilibrium::{self, Threshold};
    pub use slb_core::model::{ModelError, Move, SpeedVector, System, TaskId, TaskSet, TaskState};
    pub use slb_core::potential;
    pub use slb_core::protocol::{
        Alpha, BestResponse, BhsBaseline, Diffusion, ErrorFeedbackDiffusion, Protocol,
        SelfishUniform, SelfishWeighted, WeightedRule,
    };
    pub use slb_graphs::{generators, Graph, NodeId};
    pub use slb_serve::{PolicyKind, RoutePolicy, ServeConfig, ServeOutcome};
    pub use slb_spectral::{closed_form, laplacian};
    pub use slb_workloads::placement::Placement;
    pub use slb_workloads::scenario;
    pub use slb_workloads::sweep::{CellSpec, ProtocolKind, StopRule, SweepSpec};
    pub use slb_workloads::validate::{FamilyShape, LoadRule, Regime, RowSpec, ValidateSpec};
}
