//! `slb` — command-line front end for the selfish load-balancing simulator.
//!
//! Run simulations and inspect instances without writing Rust:
//!
//! ```console
//! slb simulate --family ring --n 16 --tasks-per-node 32 --protocol alg1 \
//!              --until nash --seed 7
//! slb spectral --family torus --rows 5 --cols 5
//! slb bounds   --family hypercube --d 5 --tasks-per-node 64
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy has
//! no CLI crate); every subcommand prints `--help`-style usage on bad
//! input and exits nonzero.

use selfish_load_balancing::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
slb — distributed selfish load balancing (Adolphs & Berenbrink, PODC 2012)

USAGE:
  slb simulate [OPTIONS]   run one protocol to a stop condition
  slb spectral [OPTIONS]   print λ₂ and the spectral bounds of a topology
  slb bounds   [OPTIONS]   print the paper's convergence bounds for an instance
  slb sweep [GRID] [OPTIONS]   run an experiment grid, emit CSV/JSON
  slb validate [LADDER] [OPTIONS]   run scaling ladders, check Table 1 conformance
  slb serve [SPEC] [OPTIONS]   route a synthetic job stream through the
                               protocols and baselines, emit CSV/JSON

TOPOLOGY OPTIONS (simulate/spectral/bounds):
  --family <complete|ring|path|mesh|torus|hypercube|star>   (default ring)
  --n <N>            nodes, for complete/ring/path/star     (default 16)
  --rows/--cols <N>  dimensions, for mesh/torus             (default 4x4)
  --d <N>            dimension, for hypercube               (default 4)

SIMULATE OPTIONS:
  --protocol <alg1|alg2|bhs|diffusion|best-response>        (default alg1)
  --tasks-per-node <N>                                      (default 32)
  --speeds <uniform|alternating:K>                          (default uniform)
  --weights <unit|uniform:LO..HI>   task weights            (default unit)
  --until <nash|quiescent|psi0:X>   stop condition          (default nash)
  --max-rounds <N>                                          (default 1000000)
  --seed <N>                                                (default 42)

SWEEP GRID (positional key=a,b,c tokens; omitted keys use the default):
  graph=ring:8,torus:3x3,…      ring|path|complete|star:N, hypercube:D,
                                mesh|torus:RxC              (default ring:8)
  tasks-per-node=8,32,…                                     (default 16)
  speeds=uniform,alternating:K,integer:MAX,two-class:FAST:FRAC,ramp:MAX:GRAN
  weights=unit,uniform:LO..HI,power-law:ALPHA:MIN,bimodal:LIGHT:HEAVY:FRAC
  placement=hot,node:V,slowest,random,proportional,round-robin
  protocol=alg1,alg2,bhs,diffusion,best-response            (default alg1)
  until=nash,quiescent:K,psi0:X                             (default nash)
  arrivals=none,poisson:RATE,batch:SIZE:PERIOD              (default none)
  completions=none,rate:MU,count:C                          (default none)
  churn=none,rate:P                                         (default none)
  speed-dyn=none,drift:SIGMA,shock:ROUND:FRAC,feedback:ETA  (default none)
                     any non-none dynamic axis runs the cell on the
                     dynamic engine (alg1|alg2|bhs only) for exactly
                     max-rounds rounds, reporting the time-averaged
                     Nash gap and post-shock recovery rounds

SWEEP OPTIONS:
  --trials <N>       trials per cell                        (default 3)
  --max-rounds <N>   round budget per trial                 (default 200000)
  --seed <N>         base seed; cell c, trial t runs on
                     derive_seed(seed, c, t)                (default 42)
  --threads <N>      one worker budget for both parallelism
                     levels: fanned across (cell, trial) work
                     items first, with the remainder driving
                     each trial's sharded rounds (output is
                     identical for every thread count)      (default: cores)
  --format <csv|json>                                       (default csv)
  --out <PATH>       write the artifact to a file instead of stdout

VALIDATE LADDER (positional key=a,b,c tokens; omitted keys use the default):
  family=ring,complete,…        sizeless names: ring|path|complete|star|
                                hypercube|mesh|torus        (default ring)
  n=8..64:x2 | n=8,16,32        geometric or listed node-count ladder
                                                            (default 8,16,32)
  load=16 | load=delta:2        m/n per node, or Thm 1.1's m = 8δn³ scaling
  protocol=alg1,…               as in sweep                 (default alg1)
  regime=approx,eps,exact       Ψ₀≤4ψ_c | ε-Nash(eps) | exact NE (default approx)
  speeds=… weights=… placement=…   single values, sweep syntax
  eps=X              ε of the eps regime                    (default 0.25)
  factor=X           rounds must stay ≤ X·theory bound      (default 2)
  exp-tol=X          exponent slack vs the Table 1 shape    (default 0.3)

VALIDATE OPTIONS:
  --trials/--max-rounds/--seed/--threads   as in sweep
  --report <md|csv|json>   report format                    (default md)
  --out <PATH>       write the report to a file instead of stdout

SERVE SPEC (positional key=value tokens; omitted keys use the default):
  graph=ring:64                 topology, sweep syntax      (default ring:8)
  policy=alg1,alg2,bhs,round-robin,greedy-least-loaded,bandwidth-softmax
                                comma list                  (default all six)
  speeds=uniform,…              sweep syntax, sampled once  (default uniform)
  weights=unit,uniform:LO..HI,… job weights, sweep syntax   (default unit)
  traffic=poisson:RATE|none     open-loop jobs per unit     (default poisson:4)
  closed=USERS:THINK|none       closed-loop population      (default none)
  faults=crash:MTTF:MTTR|none   per-backend exponential
                                crash/recover renewals      (default none)
  signal=stale:D[+loss:P]|none  probe-refreshed load view:
                                interval D units, per-probe
                                loss probability P          (default none)
  retry=max:R:base:B|none       fault-hit jobs retry ≤ R
                                times, backoff B·2^(a−1)    (default none)
  horizon=N                     units of traffic, then the
                                run drains                  (default 100)

SERVE OPTIONS:
  --seed <N>         base seed; all policies share the scenario
                     (speeds + open-loop traffic) derived from it
                                                            (default 42)
  --threads <N>      policies fan across workers; artifacts are
                     byte-identical for every thread count  (default: cores)
  --shift <S>        measurement window: [S, horizon) if S ≥ 0,
                     the last |S| units if S < 0            (default 0)
  --format <csv|json>                                       (default csv)
  --out <PATH>       write the artifact to a file instead of stdout
";

/// Splits raw arguments into `--flag [value]` pairs and positional
/// tokens. A value binds either inline (`--flag=value`) or as the next
/// token (`--flag value`); a flag followed by another flag (or by
/// nothing) is boolean and gets the value `"true"`; duplicated flags are
/// rejected whichever spelling each use chose.
///
/// Signed numeric values work in both spellings: the lookahead treats
/// only `--`-prefixed tokens as flags, so `--shift -1` binds `-1`, and
/// `--shift=-1` binds inline (the spelling that used to be swallowed
/// whole as an unknown flag named `shift=-1`).
fn parse_args(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let Some(token) = args[i].strip_prefix("--") else {
            positional.push(args[i].clone());
            i += 1;
            continue;
        };
        if token.is_empty() {
            return Err("empty flag `--`".into());
        }
        let (key, value) = match token.split_once('=') {
            Some(("", _)) => return Err(format!("empty flag name in `--{token}`")),
            Some((key, value)) => {
                i += 1;
                (key, value.to_string())
            }
            None => match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    i += 2;
                    (token, next.clone())
                }
                _ => {
                    i += 1;
                    (token, "true".to_string())
                }
            },
        };
        if flags.insert(key.to_string(), value).is_some() {
            return Err(format!("flag --{key} given twice"));
        }
    }
    Ok((flags, positional))
}

/// As [`parse_args`], for subcommands that take no positional arguments.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let (flags, positional) = parse_args(args)?;
    if let Some(stray) = positional.first() {
        return Err(format!("expected --flag, got `{stray}`"));
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --{key}")),
    }
}

fn family_of(flags: &HashMap<String, String>) -> Result<generators::Family, String> {
    let name = flags.get("family").map(String::as_str).unwrap_or("ring");
    let n: usize = get(flags, "n", 16)?;
    let rows: usize = get(flags, "rows", 4)?;
    let cols: usize = get(flags, "cols", 4)?;
    let d: u32 = get(flags, "d", 4)?;
    Ok(match name {
        "complete" => generators::Family::Complete { n },
        "ring" => generators::Family::Ring { n },
        "path" => generators::Family::Path { n },
        "mesh" => generators::Family::Mesh { rows, cols },
        "torus" => generators::Family::Torus { rows, cols },
        "hypercube" => generators::Family::Hypercube { d },
        "star" => generators::Family::Star { n },
        other => return Err(format!("unknown family `{other}`")),
    })
}

fn speeds_of(flags: &HashMap<String, String>, n: usize) -> Result<SpeedVector, String> {
    match flags.get("speeds").map(String::as_str).unwrap_or("uniform") {
        "uniform" => Ok(SpeedVector::uniform(n)),
        spec => {
            let k: u64 = spec
                .strip_prefix("alternating:")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("invalid --speeds `{spec}` (use uniform|alternating:K)"))?;
            if k == 0 {
                return Err("alternating speed must be at least 1".into());
            }
            SpeedVector::integer((0..n as u64).map(|i| 1 + i % k).collect())
                .map_err(|e| e.to_string())
        }
    }
}

fn tasks_of(flags: &HashMap<String, String>, m: usize, seed: u64) -> Result<TaskSet, String> {
    match flags.get("weights").map(String::as_str).unwrap_or("unit") {
        "unit" => Ok(TaskSet::uniform(m)),
        spec => {
            let range = spec
                .strip_prefix("uniform:")
                .and_then(|s| s.split_once(".."))
                .ok_or_else(|| format!("invalid --weights `{spec}` (use unit|uniform:LO..HI)"))?;
            let lo: f64 = range.0.parse().map_err(|_| "bad weight lower bound")?;
            let hi: f64 = range.1.parse().map_err(|_| "bad weight upper bound")?;
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(format!(
                    "invalid --weights range `{spec}` (need LO ≤ HI, finite)"
                ));
            }
            use rand::Rng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x77);
            TaskSet::weighted((0..m).map(|_| rng.gen_range(lo..=hi)).collect())
                .map_err(|e| e.to_string())
        }
    }
}

use rand::SeedableRng;

fn cmd_simulate(flags: HashMap<String, String>) -> Result<(), String> {
    let family = family_of(&flags)?;
    let graph = family.build();
    let n = graph.node_count();
    let tasks_per_node: usize = get(&flags, "tasks-per-node", 32)?;
    let seed: u64 = get(&flags, "seed", 42)?;
    let max_rounds: u64 = get(&flags, "max-rounds", 1_000_000)?;
    let m = n * tasks_per_node;
    let speeds = speeds_of(&flags, n)?;
    let tasks = tasks_of(&flags, m, seed)?;
    let weighted = !tasks.is_uniform();
    let system = System::new(graph, speeds, tasks).map_err(|e| e.to_string())?;
    let initial = TaskState::all_on_node(&system, NodeId(0));

    let condition = match flags.get("until").map(String::as_str).unwrap_or("nash") {
        "nash" => StopCondition::Nash(if weighted {
            Threshold::LightestTask
        } else {
            Threshold::UnitWeight
        }),
        "quiescent" => StopCondition::Quiescent(1_000),
        spec => {
            let bound: f64 = spec
                .strip_prefix("psi0:")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("invalid --until `{spec}`"))?;
            StopCondition::Psi0Below(bound)
        }
    };

    let protocol_name = flags.get("protocol").map(String::as_str).unwrap_or("alg1");
    println!(
        "instance : {family}, m = {m}, s_max = {}, protocol = {protocol_name}",
        system.speeds().max()
    );
    let start = potential::report(&system, &initial);
    println!(
        "start    : Ψ₀ = {:.2}, L_Δ = {:.3}",
        start.psi0, start.max_load_deviation
    );

    let outcome = match protocol_name {
        "alg1" => Simulation::new(&system, SelfishUniform::new(), initial, seed)
            .run_until(condition, max_rounds),
        "alg2" => Simulation::new(&system, SelfishWeighted::new(), initial, seed)
            .run_until(condition, max_rounds),
        "bhs" => Simulation::new(&system, BhsBaseline::new(), initial, seed)
            .run_until(condition, max_rounds),
        "diffusion" => Simulation::new(&system, Diffusion::new(), initial, seed)
            .run_until(condition, max_rounds),
        "best-response" => Simulation::new(&system, BestResponse::new(), initial, seed)
            .run_until(condition, max_rounds),
        other => return Err(format!("unknown protocol `{other}`")),
    };

    match outcome.reason {
        StopReason::ConditionMet => println!(
            "result   : condition met after {} rounds ({} migrations)",
            outcome.rounds, outcome.migrations
        ),
        StopReason::BudgetExhausted => println!(
            "result   : budget of {max_rounds} rounds exhausted ({} migrations)",
            outcome.migrations
        ),
    }
    Ok(())
}

fn cmd_spectral(flags: HashMap<String, String>) -> Result<(), String> {
    let family = family_of(&flags)?;
    let graph = family.build();
    let closed = closed_form::lambda2_family(family);
    let numeric = laplacian::lambda2(&graph).map_err(|e| e.to_string())?;
    let diam = selfish_load_balancing::graphs::traversal::diameter(&graph)
        .ok_or("graph is disconnected")?;
    println!("family     : {family}");
    println!(
        "n, |E|, Δ  : {}, {}, {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );
    println!("diameter   : {diam}");
    println!("λ₂ closed  : {closed:.6}");
    println!("λ₂ numeric : {numeric:.6}");
    use selfish_load_balancing::spectral::bounds;
    println!(
        "bounds     : Fiedler ≤ {:.4}; Mohar ≥ {:.6}; 2Δ ≥ {:.4}",
        bounds::fiedler_upper(&graph),
        bounds::mohar_lambda2_lower(graph.node_count(), diam),
        bounds::two_delta_upper(&graph),
    );
    Ok(())
}

fn cmd_bounds(flags: HashMap<String, String>) -> Result<(), String> {
    let family = family_of(&flags)?;
    let graph = family.build();
    let n = graph.node_count();
    let tasks_per_node: usize = get(&flags, "tasks-per-node", 32)?;
    let m = n * tasks_per_node;
    let inst = theory::Instance::uniform_speeds(
        n,
        m,
        graph.max_degree(),
        closed_form::lambda2_family(family),
    );
    println!("instance : {family}, m = {m} (uniform speeds)");
    println!("γ        : {:.2}", theory::gamma(&inst));
    println!("ψ_c      : {:.2}", theory::psi_c(&inst));
    println!(
        "T = 2γ·ln(m/n)              : {:.1}",
        theory::t_block(&inst)
    );
    println!(
        "Thm 1.1 (E[rounds to Ψ₀≤4ψ_c]) : {:.1}",
        theory::thm11_expected_rounds(&inst)
    );
    if let Some(b) = theory::thm12_expected_rounds(&inst) {
        println!("Thm 1.2 (E[rounds to exact NE]) : {b:.1}");
    }
    let delta = theory::delta_of_instance(&inst);
    println!(
        "δ = {:.3} → the reached state is a {:.3}-approximate NE (needs δ > 1)",
        delta,
        theory::eps_of_delta(delta)
    );
    Ok(())
}

fn cmd_sweep(flags: HashMap<String, String>, grid: &[String]) -> Result<(), String> {
    use selfish_load_balancing::analysis::sweep::{run_sweep, SweepConfig};
    use selfish_load_balancing::workloads::SweepSpec;

    // `trials` and `max-rounds` exist both as grid keys and as flags;
    // giving both would silently shadow one, so treat it like any other
    // duplicate.
    for key in ["trials", "max-rounds"] {
        let prefix = format!("{key}=");
        if flags.contains_key(key) && grid.iter().any(|t| t.starts_with(&prefix)) {
            return Err(format!(
                "`{key}` given both as a grid token and as --{key}; pick one"
            ));
        }
    }
    let mut spec = SweepSpec::parse(grid).map_err(|e| e.to_string())?;
    spec.trials = get(&flags, "trials", spec.trials)?;
    spec.max_rounds = get(&flags, "max-rounds", spec.max_rounds)?;
    if spec.trials == 0 {
        return Err("--trials must be positive".into());
    }
    if spec.max_rounds == 0 {
        return Err("--max-rounds must be positive".into());
    }
    let base_seed: u64 = get(&flags, "seed", 42)?;
    let default_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads: usize = get(&flags, "threads", default_threads)?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    // Check the output format before running, so a typo'd --format does
    // not discard a long sweep.
    let format = flags.get("format").map(String::as_str).unwrap_or("csv");
    if !["csv", "json"].contains(&format) {
        return Err(format!("unknown format `{format}` (use csv|json)"));
    }
    let outcome =
        run_sweep(&spec, SweepConfig { base_seed, threads }).map_err(|e| e.to_string())?;
    if let Some(warning) = skipped_warning(outcome.unsupported_cells(), outcome.cells.len()) {
        eprintln!("{warning}");
    }
    let rendered = match format {
        "csv" => outcome.to_csv(),
        _ => outcome.to_json(),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write `{path}`: {e}"))?
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn cmd_validate(flags: HashMap<String, String>, ladder: &[String]) -> Result<(), String> {
    use selfish_load_balancing::analysis::validate::{run_validate, ValidateConfig};
    use selfish_load_balancing::workloads::ValidateSpec;

    // `trials` and `max-rounds` exist both as ladder keys and as flags;
    // giving both would silently shadow one, so treat it like any other
    // duplicate.
    for key in ["trials", "max-rounds"] {
        let prefix = format!("{key}=");
        if flags.contains_key(key) && ladder.iter().any(|t| t.starts_with(&prefix)) {
            return Err(format!(
                "`{key}` given both as a ladder token and as --{key}; pick one"
            ));
        }
    }
    let mut spec = ValidateSpec::parse(ladder).map_err(|e| e.to_string())?;
    spec.trials = get(&flags, "trials", spec.trials)?;
    spec.max_rounds = get(&flags, "max-rounds", spec.max_rounds)?;
    if spec.trials == 0 {
        return Err("--trials must be positive".into());
    }
    if spec.max_rounds == 0 {
        return Err("--max-rounds must be positive".into());
    }
    let base_seed: u64 = get(&flags, "seed", 42)?;
    let default_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads: usize = get(&flags, "threads", default_threads)?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    // Check the report format before running: a ladder can take minutes,
    // and a typo'd --report must not discard the whole run.
    let format = flags.get("report").map(String::as_str).unwrap_or("md");
    if !["md", "csv", "json"].contains(&format) {
        return Err(format!(
            "unknown report format `{format}` (use md|csv|json)"
        ));
    }
    let outcome =
        run_validate(&spec, ValidateConfig { base_seed, threads }).map_err(|e| e.to_string())?;
    let rendered = match format {
        "md" => outcome.to_markdown(),
        "csv" => outcome.to_csv(),
        _ => outcome.to_json(),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write `{path}`: {e}"))?
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Parses the positional `key=value` tokens of `slb serve` into a spec.
/// `shift` arrives separately (it is a flag, since grids don't take
/// signed values).
fn serve_spec_of(
    tokens: &[String],
    shift: f64,
) -> Result<selfish_load_balancing::analysis::serve::ServeSpec, String> {
    use selfish_load_balancing::analysis::serve::ServeSpec;
    use selfish_load_balancing::workloads::faults;
    use selfish_load_balancing::workloads::sweep as grid;
    use selfish_load_balancing::workloads::traffic;

    let mut spec = ServeSpec {
        family: generators::Family::Ring { n: 8 },
        policies: selfish_load_balancing::serve::PolicyKind::ALL.to_vec(),
        speeds: selfish_load_balancing::workloads::speeds::SpeedDistribution::Uniform,
        weights: selfish_load_balancing::workloads::weights::WeightDistribution::Unit,
        traffic: selfish_load_balancing::workloads::TrafficSpec {
            open: traffic::parse_traffic("poisson:4").map_err(|e| e.to_string())?,
            closed: None,
        },
        faults: None,
        signal: selfish_load_balancing::workloads::SignalSpec::default(),
        retry: None,
        horizon: 100,
        shift,
    };
    let mut seen: Vec<&str> = Vec::new();
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{token}`"))?;
        if seen.contains(&key) {
            return Err(format!("serve key `{key}` given twice"));
        }
        seen.push(key);
        match key {
            "graph" => spec.family = grid::parse_family(value).map_err(|e| e.to_string())?,
            "policy" => {
                spec.policies = value
                    .split(',')
                    .map(PolicyKind::parse)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| e.to_string())?;
                if spec.policies.is_empty() {
                    return Err("policy list is empty".into());
                }
            }
            "speeds" => spec.speeds = grid::parse_speeds(value).map_err(|e| e.to_string())?,
            "weights" => spec.weights = grid::parse_weights(value).map_err(|e| e.to_string())?,
            "traffic" => {
                spec.traffic.open = traffic::parse_traffic(value).map_err(|e| e.to_string())?
            }
            "closed" => {
                spec.traffic.closed = traffic::parse_closed(value).map_err(|e| e.to_string())?
            }
            "faults" => spec.faults = faults::parse_faults(value).map_err(|e| e.to_string())?,
            "signal" => spec.signal = faults::parse_signal(value).map_err(|e| e.to_string())?,
            "retry" => spec.retry = faults::parse_retry(value).map_err(|e| e.to_string())?,
            "horizon" => {
                spec.horizon = value
                    .parse()
                    .map_err(|_| format!("invalid horizon `{value}`"))?;
                if spec.horizon == 0 {
                    return Err("horizon must be positive".into());
                }
            }
            other => return Err(format!("unknown serve key `{other}`")),
        }
    }
    if spec.traffic.is_empty() {
        return Err("serve needs a traffic source: set traffic= and/or closed=".into());
    }
    if !shift.is_finite() || shift.abs() >= spec.horizon as f64 {
        return Err(format!(
            "--shift {shift} leaves an empty measurement window over horizon {}",
            spec.horizon
        ));
    }
    Ok(spec)
}

fn cmd_serve(flags: HashMap<String, String>, tokens: &[String]) -> Result<(), String> {
    use selfish_load_balancing::analysis::serve::run_serve;

    let shift: f64 = get(&flags, "shift", 0.0)?;
    let spec = serve_spec_of(tokens, shift)?;
    let base_seed: u64 = get(&flags, "seed", 42)?;
    let default_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads: usize = get(&flags, "threads", default_threads)?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    // Check the output format before running, so a typo'd --format does
    // not discard a long run.
    let format = flags.get("format").map(String::as_str).unwrap_or("csv");
    if !["csv", "json"].contains(&format) {
        return Err(format!("unknown format `{format}` (use csv|json)"));
    }
    let report = run_serve(&spec, base_seed, threads);
    let rendered = match format {
        "csv" => report.to_csv(),
        _ => report.to_json(),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write `{path}`: {e}"))?
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// The one-line stderr warning for sweep grids with skipped cells: their
/// rows are zeroed, and must never be mistaken for measurements. `None`
/// (no warning) when every cell executed — the only outcome today, since
/// every protocol × task-mode combination has an engine.
fn skipped_warning(skipped: usize, total: usize) -> Option<String> {
    (skipped > 0).then(|| {
        format!(
            "warning: {skipped} of {total} cells were skipped as unsupported; their rows are \
             zeroed, not measured"
        )
    })
}

/// Whether the parsed flags request usage output (`--help` as a boolean
/// flag on any subcommand).
fn wants_help(flags: &HashMap<String, String>) -> bool {
    flags.contains_key("help")
}

const TOPOLOGY_FLAGS: &[&str] = &["help", "family", "n", "rows", "cols", "d"];
const SIMULATE_FLAGS: &[&str] = &[
    "help",
    "family",
    "n",
    "rows",
    "cols",
    "d",
    "protocol",
    "tasks-per-node",
    "speeds",
    "weights",
    "until",
    "max-rounds",
    "seed",
];
const BOUNDS_FLAGS: &[&str] = &["help", "family", "n", "rows", "cols", "d", "tasks-per-node"];
const SWEEP_FLAGS: &[&str] = &[
    "help",
    "trials",
    "max-rounds",
    "seed",
    "threads",
    "format",
    "out",
];
const VALIDATE_FLAGS: &[&str] = &[
    "help",
    "trials",
    "max-rounds",
    "seed",
    "threads",
    "report",
    "out",
];
const SERVE_FLAGS: &[&str] = &["help", "seed", "threads", "shift", "format", "out"];

/// Rejects misspelled flags instead of silently ignoring them (a dropped
/// `--seed` would otherwise produce a wrong-but-plausible artifact).
fn reject_unknown(flags: &HashMap<String, String>, known: &[&str]) -> Result<(), String> {
    let mut unknown: Vec<&str> = flags
        .keys()
        .map(String::as_str)
        .filter(|k| !known.contains(k))
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        Some(flag) => Err(format!("unknown flag --{flag}")),
        None => Ok(()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let with_flags = |run: fn(HashMap<String, String>) -> Result<(), String>,
                      rest: &[String],
                      known: &[&str]|
     -> Result<(), String> {
        let flags = parse_flags(rest)?;
        if wants_help(&flags) {
            print!("{USAGE}");
            return Ok(());
        }
        reject_unknown(&flags, known)?;
        run(flags)
    };
    let result = match command.as_str() {
        "simulate" => with_flags(cmd_simulate, rest, SIMULATE_FLAGS),
        "spectral" => with_flags(cmd_spectral, rest, TOPOLOGY_FLAGS),
        "bounds" => with_flags(cmd_bounds, rest, BOUNDS_FLAGS),
        "sweep" => parse_args(rest).and_then(|(flags, grid)| {
            if wants_help(&flags) {
                print!("{USAGE}");
                return Ok(());
            }
            reject_unknown(&flags, SWEEP_FLAGS)?;
            cmd_sweep(flags, &grid)
        }),
        "validate" => parse_args(rest).and_then(|(flags, ladder)| {
            if wants_help(&flags) {
                print!("{USAGE}");
                return Ok(());
            }
            reject_unknown(&flags, VALIDATE_FLAGS)?;
            cmd_validate(flags, &ladder)
        }),
        "serve" => parse_args(rest).and_then(|(flags, tokens)| {
            if wants_help(&flags) {
                print!("{USAGE}");
                return Ok(());
            }
            reject_unknown(&flags, SERVE_FLAGS)?;
            cmd_serve(flags, &tokens)
        }),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_flags_roundtrip() {
        let parsed = parse_flags(&[
            "--family".into(),
            "torus".into(),
            "--rows".into(),
            "5".into(),
        ])
        .unwrap();
        assert_eq!(parsed.get("family").unwrap(), "torus");
        assert_eq!(parsed.get("rows").unwrap(), "5");
        assert!(parse_flags(&["oops".into()]).is_err());
    }

    #[test]
    fn parse_flags_boolean_and_duplicates() {
        // A flag with no value (trailing, or followed by another flag) is
        // boolean.
        let parsed = parse_flags(&["--help".into()]).unwrap();
        assert_eq!(parsed.get("help").unwrap(), "true");
        let parsed = parse_flags(&["--verbose".into(), "--n".into(), "4".into()]).unwrap();
        assert_eq!(parsed.get("verbose").unwrap(), "true");
        assert_eq!(parsed.get("n").unwrap(), "4");
        // Duplicates are rejected with a clear message.
        let err = parse_flags(&["--n".into(), "1".into(), "--n".into(), "2".into()]).unwrap_err();
        assert!(err.contains("given twice"), "{err}");
        // A bare `--` is rejected.
        assert!(parse_flags(&["--".into()]).is_err());
    }

    #[test]
    fn parse_flags_binds_signed_values_in_both_spellings() {
        // Regression: the serve grammar takes signed offsets, and the
        // inline spelling `--shift=-1` used to be swallowed whole as an
        // unknown flag named `shift=-1`. Both spellings must bind `-1`.
        let parsed = parse_flags(&["--shift".into(), "-1".into()]).unwrap();
        assert_eq!(parsed.get("shift").unwrap(), "-1");
        let parsed = parse_flags(&["--shift=-1".into()]).unwrap();
        assert_eq!(parsed.get("shift").unwrap(), "-1");
        // Signed values parse through `get` like any other numeric flag.
        let shift: f64 = get(&parsed, "shift", 0.0).unwrap();
        assert_eq!(shift, -1.0);
        // Inline values may themselves contain `=` (split once only) and
        // may be empty (`--out=` is an explicit empty value, not a
        // boolean).
        let parsed = parse_flags(&["--filter=key=value".into()]).unwrap();
        assert_eq!(parsed.get("filter").unwrap(), "key=value");
        let parsed = parse_flags(&["--out=".into()]).unwrap();
        assert_eq!(parsed.get("out").unwrap(), "");
        // The two spellings name the same flag: mixing them duplicates.
        let err = parse_flags(&["--seed=1".into(), "--seed".into(), "2".into()]).unwrap_err();
        assert!(err.contains("given twice"), "{err}");
        // `--=x` has no flag name.
        assert!(parse_flags(&["--=5".into()]).is_err());
    }

    #[test]
    fn parse_args_inline_values_leave_grid_tokens_positional() {
        // Grid tokens contain `=` but no `--` prefix: they must stay
        // positional while inline flag values bind.
        let (flags, positional) = parse_args(&[
            "graph=ring:8".into(),
            "--seed=7".into(),
            "--shift=-2.5".into(),
        ])
        .unwrap();
        assert_eq!(positional, vec!["graph=ring:8"]);
        assert_eq!(flags.get("seed").unwrap(), "7");
        assert_eq!(flags.get("shift").unwrap(), "-2.5");
    }

    #[test]
    fn parse_args_separates_grid_tokens_from_flags() {
        let (flags, positional) = parse_args(&[
            "graph=ring:8".into(),
            "--seed".into(),
            "7".into(),
            "protocol=alg1,bhs".into(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap();
        assert_eq!(positional, vec!["graph=ring:8", "protocol=alg1,bhs"]);
        assert_eq!(flags.get("seed").unwrap(), "7");
        assert_eq!(flags.get("threads").unwrap(), "2");
    }

    #[test]
    fn sweep_runs_and_is_thread_invariant() {
        use selfish_load_balancing::analysis::sweep::{run_sweep, SweepConfig};
        use selfish_load_balancing::workloads::SweepSpec;
        let spec = SweepSpec::parse(&[
            "graph=ring:5",
            "tasks-per-node=6",
            "protocol=alg1,diffusion",
            "until=quiescent:10",
            "trials=2",
            "max-rounds=5000",
        ])
        .unwrap();
        let a = run_sweep(
            &spec,
            SweepConfig {
                base_seed: 1,
                threads: 1,
            },
        )
        .unwrap();
        let b = run_sweep(
            &spec,
            SweepConfig {
                base_seed: 1,
                threads: 4,
            },
        )
        .unwrap();
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn serve_spec_parsing_defaults_and_errors() {
        let spec = serve_spec_of(&[], 0.0).unwrap();
        assert_eq!(spec.family.node_count(), 8);
        assert_eq!(spec.policies.len(), 6);
        assert_eq!(spec.horizon, 100);
        assert!(spec.traffic.open.is_some() && spec.traffic.closed.is_none());

        let spec = serve_spec_of(
            &[
                "graph=torus:3x3".into(),
                "policy=alg2,greedy-least-loaded".into(),
                "traffic=poisson:2.5".into(),
                "closed=4:1.5".into(),
                "faults=crash:8:2".into(),
                "signal=stale:0.5+loss:0.1".into(),
                "retry=max:3:base:0.25".into(),
                "horizon=50".into(),
            ],
            -10.0,
        )
        .unwrap();
        assert_eq!(spec.family.node_count(), 9);
        assert_eq!(spec.policies.len(), 2);
        assert_eq!(spec.horizon, 50);
        assert!(spec.traffic.closed.is_some());
        assert!(spec.faults.is_some());
        assert!(spec.signal.is_degraded());
        assert!(spec.retry.is_some());

        // The degradation axes default off.
        let spec = serve_spec_of(&[], 0.0).unwrap();
        assert!(spec.faults.is_none() && spec.retry.is_none());
        assert!(!spec.signal.is_degraded());

        // Degenerate specs are rejected with a pointed message.
        assert!(serve_spec_of(&["policy=warp-speed".into()], 0.0).is_err());
        assert!(serve_spec_of(&["horizon=0".into()], 0.0).is_err());
        assert!(serve_spec_of(&["oops".into()], 0.0).is_err());
        assert!(serve_spec_of(&["speed=uniform".into()], 0.0).is_err());
        let err = serve_spec_of(&["traffic=none".into()], 0.0).unwrap_err();
        assert!(err.contains("traffic source"), "{err}");
        let err = serve_spec_of(&["horizon=5".into()], -5.0).unwrap_err();
        assert!(err.contains("empty measurement window"), "{err}");
        let err = serve_spec_of(&["horizon=5".into(), "horizon=6".into()], 0.0).unwrap_err();
        assert!(err.contains("given twice"), "{err}");

        // Each malformed degradation token names its own failure.
        let err = serve_spec_of(&["faults=crash:".into()], 0.0).unwrap_err();
        assert!(err.contains("invalid faults"), "{err}");
        let err = serve_spec_of(&["faults=crash:0:2".into()], 0.0).unwrap_err();
        assert!(err.contains("mttf"), "{err}");
        let err = serve_spec_of(&["signal=stale:-1".into()], 0.0).unwrap_err();
        assert!(err.contains("staleness"), "{err}");
        let err = serve_spec_of(&["signal=loss:0.5".into()], 0.0).unwrap_err();
        assert!(err.contains("probe interval"), "{err}");
        let err = serve_spec_of(&["signal=stale:1+stale:2".into()], 0.0).unwrap_err();
        assert!(err.contains("twice"), "{err}");
        let err = serve_spec_of(&["retry=max:0:base:1".into()], 0.0).unwrap_err();
        assert!(err.contains("at least one"), "{err}");
        let err = serve_spec_of(&["retry=max:99:base:1".into()], 0.0).unwrap_err();
        assert!(err.contains("stride"), "{err}");
        let err =
            serve_spec_of(&["faults=crash:8:2".into(), "faults=none".into()], 0.0).unwrap_err();
        assert!(err.contains("given twice"), "{err}");
    }

    #[test]
    fn serve_runs_end_to_end_and_is_thread_invariant() {
        use selfish_load_balancing::analysis::serve::run_serve;
        let spec = serve_spec_of(
            &[
                "graph=ring:8".into(),
                "speeds=alternating:2".into(),
                "traffic=poisson:3".into(),
                "horizon=20".into(),
            ],
            -10.0,
        )
        .unwrap();
        let a = run_serve(&spec, 11, 1);
        let b = run_serve(&spec, 11, 6);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.rows.len(), 6);
    }

    #[test]
    fn skipped_cells_warning_fires_only_when_cells_were_skipped() {
        assert_eq!(skipped_warning(0, 10), None);
        let w = skipped_warning(2, 10).unwrap();
        assert!(w.contains("2 of 10"), "{w}");
        assert!(w.contains("zeroed"), "{w}");
    }

    #[test]
    fn family_parsing() {
        let f = family_of(&flags(&[("family", "hypercube"), ("d", "3")])).unwrap();
        assert_eq!(f.node_count(), 8);
        assert!(family_of(&flags(&[("family", "blob")])).is_err());
        // Default is a 16-ring.
        assert_eq!(family_of(&flags(&[])).unwrap().node_count(), 16);
    }

    #[test]
    fn speeds_parsing() {
        let s = speeds_of(&flags(&[("speeds", "alternating:3")]), 6).unwrap();
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert!(speeds_of(&flags(&[("speeds", "alternating:0")]), 4).is_err());
        assert!(speeds_of(&flags(&[("speeds", "warp")]), 4).is_err());
        assert!(speeds_of(&flags(&[]), 4).unwrap().is_uniform());
    }

    #[test]
    fn weights_parsing() {
        let t = tasks_of(&flags(&[("weights", "uniform:0.1..0.5")]), 50, 1).unwrap();
        assert!(!t.is_uniform());
        assert!(t.max_weight() <= 0.5);
        assert!(tasks_of(&flags(&[("weights", "heavy")]), 5, 1).is_err());
        assert!(tasks_of(&flags(&[]), 5, 1).unwrap().is_uniform());
    }

    #[test]
    fn simulate_runs_end_to_end() {
        cmd_simulate(flags(&[
            ("family", "ring"),
            ("n", "6"),
            ("tasks-per-node", "8"),
            ("protocol", "alg1"),
            ("until", "nash"),
            ("max-rounds", "100000"),
        ]))
        .unwrap();
    }

    #[test]
    fn spectral_and_bounds_run() {
        cmd_spectral(flags(&[("family", "torus"), ("rows", "3"), ("cols", "4")])).unwrap();
        cmd_bounds(flags(&[("family", "hypercube"), ("d", "3")])).unwrap();
    }
}
