#!/usr/bin/env bash
# Bench-trajectory bootstrap: drives `cargo bench` over the round
# micro-benchmarks and records per-engine round throughput at
# m/n ∈ {10, 100, 1000} as BENCH_baseline.json — the recorded baseline
# future perf PRs diff against (CI uploads it as a workflow artifact).
#
# Also enforces the speed-fast acceptance floor: the count-based
# speed-aware engine must stay ≥ MIN_SPEEDUP× (default 100×) faster than
# the per-task engine per round at m/n = 1000, per protocol rule.
#
# Usage: scripts/bench_baseline.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_baseline.json}"
mkdir -p "$(dirname "$out")"
min_speedup="${MIN_SPEEDUP:-100}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running cargo bench --bench protocol_rounds ..." >&2
cargo bench --bench protocol_rounds 2>/dev/null | tee "$raw" >&2

rustc_version="$(rustc --version)"
generated_at="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

awk -v out="$out" -v rustc_version="$rustc_version" -v generated_at="$generated_at" \
    -v min_speedup="$min_speedup" '
function to_ns(v, u) {
    if (u == "ns") return v
    if (u == "\302\265s") return v * 1e3   # µs
    if (u == "ms") return v * 1e6
    if (u == "s")  return v * 1e9
    return -1
}
$1 ~ /^round\// {
    # Shim format: LABEL best V U | median V U | mean V U (N samples)
    median = -1
    for (i = 1; i <= NF; i++) {
        if ($i == "median") median = to_ns($(i + 1), $(i + 2))
    }
    if (median <= 0) next
    # The baseline records the m/n ladder ids only.
    if ($1 !~ /mpn(10|100|1000)$/) next
    n_parts = split($1, parts, "/")
    engine = parts[2]
    id = parts[n_parts]
    mpn = id
    sub(/^.*mpn/, "", mpn)
    entries[++count] = sprintf(\
        "    {\"engine\": \"%s\", \"id\": \"%s\", \"mpn\": %s, " \
        "\"median_ns_per_round\": %.1f, \"rounds_per_sec\": %.0f}",
        engine, id, mpn, median, 1e9 / median)
    ns[engine "/" id] = median
}
END {
    if (count == 0) {
        print "error: no round/*mpn* benchmark lines parsed" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"schema\": \"slb-bench-baseline/v1\",\n" >> out
    printf "  \"generated_by\": \"scripts/bench_baseline.sh\",\n" >> out
    printf "  \"generated_at\": \"%s\",\n", generated_at >> out
    printf "  \"toolchain\": \"%s\",\n", rustc_version >> out
    printf "  \"scenario\": \"2-class ring:64, alternating speeds 1/2 (uniform-fast: unit tasks)\",\n" >> out
    printf "  \"entries\": [\n" >> out
    for (i = 1; i <= count; i++)
        printf "%s%s\n", entries[i], (i < count ? "," : "") >> out
    printf "  ]\n}\n" >> out

    # Acceptance floor: speed-fast vs the per-task engine at m/n = 1000.
    # A missing key is itself an error — if a bench group or id is ever
    # renamed, the gate must fail loudly rather than silently stop
    # checking.
    status = 0
    n_pairs = split("alg2:parallel-task-weighted bhs:parallel-task-bhs", pairs, " ")
    for (p = 1; p <= n_pairs; p++) {
        split(pairs[p], pair, ":")
        fast_key = "speed-fast/" pair[1] "-ring64-mpn1000"
        task_key = pair[2] "/ring64-mpn1000"
        if (!(fast_key in ns) || !(task_key in ns)) {
            printf "error: bench ids %s / %s not found — was a benchmark renamed?\n", \
                fast_key, task_key > "/dev/stderr"
            status = 1
            continue
        }
        r = ns[task_key] / ns[fast_key]
        printf "speedup %-5s (speed-fast vs per-task, m/n=1000): %.0fx\n", \
            pair[1], r > "/dev/stderr"
        if (r < min_speedup) status = 1
    }
    if (status != 0) {
        printf "error: speed-fast acceptance gate failed (floor: %sx)\n", min_speedup > "/dev/stderr"
        exit status
    }
}' "$raw"

echo "wrote $out" >&2
