#!/usr/bin/env bash
# Bench-trajectory bootstrap: drives `cargo bench` over the round
# micro-benchmarks and records per-engine round throughput as a BENCH
# snapshot JSON — both the m/n ∈ {10, 100, 1000} engine-comparison ids
# and the sharded-round scaling ladder at n ∈ {2¹⁰, 2¹⁶, 2²⁰}
# (`*-scale` groups, `-n<size>` ids). The `serve/route` and
# `serve/faults` groups ride along: one entry per routing policy, where
# a measured iteration is a complete fixed-traffic serve run (generate +
# route + drain) — plain, and under the full degraded-mode stack
# (crashes + stale lossy signals + retry/backoff; `faults-*` ids).
# Committed snapshots (BENCH_*.json) form the perf trajectory future
# PRs diff against.
#
# Gates (both fail the script loudly):
#   1. speed-fast acceptance floor — the count-based speed-aware engine
#      must stay ≥ MIN_SPEEDUP× (default 100×) faster than the per-task
#      engine per round at m/n = 1000, per protocol rule.
#   2. regression diff — every (engine, id) shared with the newest
#      committed BENCH_*.json must not be more than MAX_REGRESSION_PCT
#      (default 20) percent slower than that snapshot.
#
# Usage: scripts/bench_baseline.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: never record a baseline from a tree that violates the
# determinism invariants — a nondeterministic engine makes the numbers
# unreproducible, so the lint gate runs before any cycle is spent.
echo "preflight: slb-lint ..." >&2
cargo run -q -p slb_lint

out="${1:-BENCH_baseline.json}"
mkdir -p "$(dirname "$out")"
min_speedup="${MIN_SPEEDUP:-100}"
max_regression_pct="${MAX_REGRESSION_PCT:-20}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running cargo bench --bench protocol_rounds ..." >&2
cargo bench --bench protocol_rounds 2>/dev/null | tee "$raw" >&2

echo "running cargo bench --bench serve ..." >&2
cargo bench --bench serve 2>/dev/null | tee -a "$raw" >&2

rustc_version="$(rustc --version)"
generated_at="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

awk -v out="$out" -v rustc_version="$rustc_version" -v generated_at="$generated_at" \
    -v min_speedup="$min_speedup" '
function to_ns(v, u) {
    if (u == "ns") return v
    if (u == "\302\265s") return v * 1e3   # µs
    if (u == "ms") return v * 1e6
    if (u == "s")  return v * 1e9
    return -1
}
$1 ~ /^round\// {
    # Shim format: LABEL best V U | median V U | mean V U (N samples)
    median = -1
    for (i = 1; i <= NF; i++) {
        if ($i == "median") median = to_ns($(i + 1), $(i + 2))
    }
    if (median <= 0) next
    n_parts = split($1, parts, "/")
    engine = parts[2]
    id = parts[n_parts]
    if ($1 ~ /mpn(10|100|1000)$/) {
        # Engine-comparison ids: the m/n ladder on ring:64.
        mpn = id
        sub(/^.*mpn/, "", mpn)
        entries[++count] = sprintf(\
            "    {\"engine\": \"%s\", \"id\": \"%s\", \"mpn\": %s, " \
            "\"median_ns_per_round\": %.1f, \"rounds_per_sec\": %.0f}",
            engine, id, mpn, median, 1e9 / median)
    } else if ($1 ~ /-n[0-9]+(-t[0-9]+)?$/) {
        # Sharded-round scaling ladder: `<family>-n<size>[-t<threads>]`.
        size = id
        sub(/^.*-n/, "", size)
        threads = 1
        if (size ~ /-t[0-9]+$/) {
            threads = size
            sub(/^.*-t/, "", threads)
            sub(/-t[0-9]+$/, "", size)
        }
        entries[++count] = sprintf(\
            "    {\"engine\": \"%s\", \"id\": \"%s\", \"n\": %s, \"threads\": %s, " \
            "\"median_ns_per_round\": %.1f, \"rounds_per_sec\": %.0f}",
            engine, id, size, threads, median, 1e9 / median)
    } else {
        next
    }
    ns[engine "/" id] = median
}
$1 ~ /^serve\// {
    # One full serve run per iteration: `serve/route/<policy>-ring64`
    # or `serve/faults/faults-<policy>-ring64`.
    median = -1
    for (i = 1; i <= NF; i++) {
        if ($i == "median") median = to_ns($(i + 1), $(i + 2))
    }
    if (median <= 0) next
    n_parts = split($1, parts, "/")
    id = parts[n_parts]
    entries[++count] = sprintf(\
        "    {\"engine\": \"serve\", \"id\": \"%s\", " \
        "\"median_ns_per_run\": %.1f, \"runs_per_sec\": %.1f}",
        id, median, 1e9 / median)
    ns["serve/" id] = median
}
END {
    if (count == 0) {
        print "error: no round/* benchmark lines parsed" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"schema\": \"slb-bench-baseline/v3\",\n" >> out
    printf "  \"generated_by\": \"scripts/bench_baseline.sh\",\n" >> out
    printf "  \"generated_at\": \"%s\",\n", generated_at >> out
    printf "  \"toolchain\": \"%s\",\n", rustc_version >> out
    printf "  \"scenario\": \"2-class ring:64, alternating speeds 1/2 (uniform-fast: unit tasks); scale ladder: alternating hot/cold counts, ~95 tasks/node mean; serve: one full open-loop poisson:256 x 25-unit run per policy on the two-speed ring:64, plain (route) and under crash:6:2 + stale:0.5+loss:0.1 + max:3:base:0.25 (faults)\",\n" >> out
    printf "  \"entries\": [\n" >> out
    for (i = 1; i <= count; i++)
        printf "%s%s\n", entries[i], (i < count ? "," : "") >> out
    printf "  ]\n}\n" >> out

    # Acceptance floor: speed-fast vs the per-task engine at m/n = 1000.
    # A missing key is itself an error — if a bench group or id is ever
    # renamed, the gate must fail loudly rather than silently stop
    # checking.
    status = 0
    n_pairs = split("alg2:parallel-task-weighted bhs:parallel-task-bhs", pairs, " ")
    for (p = 1; p <= n_pairs; p++) {
        split(pairs[p], pair, ":")
        fast_key = "speed-fast/" pair[1] "-ring64-mpn1000"
        task_key = pair[2] "/ring64-mpn1000"
        if (!(fast_key in ns) || !(task_key in ns)) {
            printf "error: bench ids %s / %s not found — was a benchmark renamed?\n", \
                fast_key, task_key > "/dev/stderr"
            status = 1
            continue
        }
        r = ns[task_key] / ns[fast_key]
        printf "speedup %-5s (speed-fast vs per-task, m/n=1000): %.0fx\n", \
            pair[1], r > "/dev/stderr"
        if (r < min_speedup) status = 1
    }
    if (status != 0) {
        printf "error: speed-fast acceptance gate failed (floor: %sx)\n", min_speedup > "/dev/stderr"
        exit status
    }
}' "$raw"

echo "wrote $out" >&2

# Regression diff against the newest committed snapshot (if any). Only
# (engine, id) pairs present in both files are compared, so adding or
# retiring benchmarks never trips the gate — slowing a surviving one does.
prev="$(git ls-files 'BENCH_*.json' | sort -V | tail -n 1 || true)"
if [ -z "$prev" ]; then
    echo "no committed BENCH_*.json snapshot yet — skipping regression diff" >&2
elif [ "$prev" = "$out" ]; then
    echo "output $out is itself the committed snapshot — skipping regression diff" >&2
else
    echo "diffing against committed snapshot $prev (max regression: ${max_regression_pct}%) ..." >&2
    awk -v max_pct="$max_regression_pct" -v prev_name="$prev" '
    # Both files are written by this script: one entry object per line.
    function field(line, key,    s) {
        s = line
        if (!sub(".*\"" key "\": ", "", s)) return ""
        sub(/[,}].*/, "", s)
        gsub(/"/, "", s)
        return s
    }
    /"median_ns_per_r(ound|un)"/ {
        key = field($0, "engine") "/" field($0, "id")
        med = field($0, "median_ns_per_round")
        if (med == "") med = field($0, "median_ns_per_run")
        med += 0
        if (FILENAME == ARGV[1]) old[key] = med
        else                     new[key] = med
    }
    END {
        status = 0
        compared = 0
        for (key in new) {
            if (!(key in old)) continue
            compared++
            pct = (new[key] / old[key] - 1) * 100
            if (pct > max_pct) {
                printf "REGRESSION %-45s %.1f -> %.1f ns/iter (%+.0f%%)\n", \
                    key, old[key], new[key], pct > "/dev/stderr"
                status = 1
            } else if (pct < -max_pct) {
                printf "improved   %-45s %.1f -> %.1f ns/iter (%+.0f%%)\n", \
                    key, old[key], new[key], pct > "/dev/stderr"
            }
        }
        if (compared == 0) {
            printf "error: no shared (engine, id) pairs between %s and the new run — \
were the benchmarks renamed wholesale?\n", prev_name > "/dev/stderr"
            exit 1
        }
        printf "compared %d shared benchmark ids against %s\n", compared, prev_name > "/dev/stderr"
        if (status != 0) {
            printf "error: throughput regressed more than %s%% vs %s\n", \
                max_pct, prev_name > "/dev/stderr"
            exit 1
        }
    }' "$prev" "$out"
fi
