//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's non-poisoning API: the
//! workspace only ever locks from worker threads that do not leak panics
//! across the lock, so poisoning recovery is unreachable and a poisoned
//! lock is treated as a bug (panic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive (non-poisoning `lock` like parking_lot's).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
