//! Strategies: how test inputs are generated.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy generating an intermediate value and feeding it to `f`
    /// to build the final strategy (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-typed strategies (see
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given options.
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case(123, 0)
    }

    #[test]
    fn ranges_tuples_and_combinators_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let (a, b) = ((0u64..4), (10i64..=12)).generate(&mut r);
            assert!(a < 4 && (10..=12).contains(&b));
            let doubled = (1u32..5).prop_map(|x| x * 2).generate(&mut r);
            assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
            let dependent = (1usize..4)
                .prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)))
                .generate(&mut r);
            assert!(dependent.1 < dependent.0);
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut r = rng();
        let u = Union::new(vec![(0u32..1).boxed(), (10u32..11).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            match u.generate(&mut r) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn just_clones_its_value() {
        let mut r = rng();
        assert_eq!(Just(vec![1, 2]).generate(&mut r), vec![1, 2]);
    }
}
