//! Test-runner plumbing: configuration, the per-case RNG, and rejection.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Marker returned by [`crate::prop_assume!`] when a case is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Reject;

/// FNV-1a over the test's identity, so every test gets its own
/// deterministic stream.
pub fn case_seed(file: &str, line: u32, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes().chain(name.bytes()).chain(line.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The generator handed to strategies; deterministic per `(seed, case)`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for case number `case` of a test with identity seed
    /// `base`.
    pub fn for_case(base: u64, case: u32) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(
                base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)),
            ),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_distinguish_tests_and_cases() {
        let a = case_seed("a.rs", 1, "t");
        assert_eq!(a, case_seed("a.rs", 1, "t"));
        assert_ne!(a, case_seed("a.rs", 2, "t"));
        assert_ne!(a, case_seed("a.rs", 1, "u"));
        let mut r1 = TestRng::for_case(a, 0);
        let mut r2 = TestRng::for_case(a, 1);
        assert_ne!(r1.next_u64(), r2.next_u64());
    }
}
