//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and tuple
//! strategies, [`collection::vec()`], `prop_map` / `prop_flat_map`,
//! [`prop_oneof!`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its panic message directly;
//!   the case seed is deterministic per `(test name, case index)`, so
//!   failures reproduce exactly on re-run.
//! * Value generation is purely random per case (no bias toward edge
//!   cases).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
///
/// (In a test module, annotate each function with `#[test]` as usual.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let base = $crate::test_runner::case_seed(file!(), line!(), stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempt: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(256);
                while accepted < config.cases {
                    assert!(
                        attempt < max_attempts,
                        "too many prop_assume! rejections ({accepted}/{} cases after {attempt} attempts)",
                        config.cases,
                    );
                    let mut __rng = $crate::test_runner::TestRng::for_case(base, attempt);
                    attempt += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let outcome: ::core::result::Result<(), $crate::test_runner::Reject> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Asserts a property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (it is re-drawn, not failed) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// A strategy choosing uniformly among the listed strategies (all of one
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
