//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s whose length lies in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_stay_in_range() {
        let mut rng = TestRng::for_case(7, 0);
        let strat = vec(0u32..5, 2..=6);
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            lengths.insert(v.len());
        }
        assert!(lengths.len() >= 4, "lengths barely vary: {lengths:?}");
        // Exact size from a bare usize.
        assert_eq!(vec(0u32..2, 3).generate(&mut rng).len(), 3);
    }
}
