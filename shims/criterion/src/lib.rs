//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`] / [`criterion_main!`], [`black_box`] — with a
//! simple measurement loop: warm up briefly, then time batches until a
//! wall-clock budget is spent, and report the best/median/mean
//! nanoseconds per iteration to stdout. No plots, no statistics files, no
//! command-line filtering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark context; collects and prints measurements.
#[derive(Debug)]
pub struct Criterion {
    /// Per-benchmark wall-clock measurement budget.
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        let sample_size = self.sample_size;
        self.run_one(&label, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, label: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(label);
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; measurements are reported as
    /// they complete).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (API parity; the shim
/// always runs one setup per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs (criterion batches many per allocation).
    SmallInput,
    /// Large routine inputs (criterion batches few).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times the closure handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, recording nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: target ~budget/sample_size per batch.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.budget.div_f64(5.0) {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 10_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((self.budget.as_secs_f64() / self.sample_size as f64 / per_iter.max(1e-9))
            .ceil() as u64)
            .clamp(1, 1_000_000);

        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
            if run_start.elapsed() > self.budget.mul_f64(2.0) {
                break; // Slow benchmark: settle for fewer samples.
            }
        }
    }

    /// Measures `routine` on fresh inputs from `setup`, timing only the
    /// routine (API parity with criterion's `iter_batched`; the shim runs
    /// one setup per measured call regardless of `BatchSize`).
    ///
    /// Use this when the routine consumes or mutates its input and
    /// re-preparing it inside `iter` would pollute the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        // Warm-up sizes batches by *wall* time (setup included) so the
        // total run respects the budget, while samples record routine
        // time only.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.budget.div_f64(5.0) {
            let input = setup();
            black_box(routine(input));
            warmup_iters += 1;
            if warmup_iters >= 10_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((self.budget.as_secs_f64() / self.sample_size as f64 / per_iter.max(1e-9))
            .ceil() as u64)
            .clamp(1, 1_000_000);

        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut acc = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                acc += t.elapsed();
            }
            self.samples_ns.push(acc.as_nanos() as f64 / batch as f64);
            if run_start.elapsed() > self.budget.mul_f64(2.0) {
                break; // Slow benchmark: settle for fewer samples.
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples_ns.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let best = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{label:<40} best {:>12} | median {:>12} | mean {:>12} ({} samples)",
            fmt_ns(best),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            sample_size: 5,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(10),
            sample_size: 3,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::from_parameter(42), |b| b.iter(|| black_box(1)));
        group.bench_function(BenchmarkId::new("f", "x"), |b| b.iter(|| black_box(2)));
        group.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_ns(3_200_000_000.0), "3.200 s");
    }
}
