//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, built on `std::thread::scope`.
//!
//! Only `crossbeam::thread::scope` + `Scope::spawn` are provided — the
//! two entry points the simulation engines use. One behavioral
//! difference: when a spawned thread panics, `std::thread::scope`
//! propagates the panic instead of returning `Err`, so the `Result` this
//! shim returns is always `Ok`. Both callers immediately
//! `.expect()`/`.unwrap()` the result, making the observable behavior
//! (a panic naming the worker failure) the same.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    /// A scope in which borrowed-data threads can be spawned.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined
    /// before this returns.
    ///
    /// Always `Ok` (see the crate docs): a panicking worker propagates
    /// its panic out of this call rather than materializing an `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scope_joins_all_spawned_threads() {
            let hits = AtomicUsize::new(0);
            let hits_ref = &hits;
            super::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(move |_| {
                        hits_ref.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), 8);
        }

        #[test]
        fn nested_spawn_through_the_passed_scope() {
            let hits = AtomicUsize::new(0);
            let hits_ref = &hits;
            super::scope(|scope| {
                scope.spawn(move |inner| {
                    inner.spawn(move |_| {
                        hits_ref.fetch_add(1, Ordering::Relaxed);
                    });
                });
            })
            .unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), 1);
        }

        #[test]
        fn scope_returns_the_closure_value() {
            let v = super::scope(|_| 42).unwrap();
            assert_eq!(v, 42);
        }
    }
}
