//! Sequence helpers (`choose`, `shuffle`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it actually moves things with overwhelming probability.
        assert_ne!(v, sorted);
    }
}
