//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The workspace builds without network access, so instead of the real
//! `rand` this shim provides the exact API subset the simulator uses:
//!
//! * [`rngs::StdRng`] — a seedable, clonable generator (xoshiro256++
//!   seeded through SplitMix64; **not** stream-compatible with the real
//!   `StdRng`, which is irrelevant here because every consumer treats the
//!   stream as opaque),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng`] — `gen`, `gen_range` over integer/float ranges, `gen_bool`,
//! * [`seq::SliceRandom`] — `choose` and `shuffle`.
//!
//! Integer ranges sample by rejection (no modulo bias); float ranges use
//! the standard 53-bit mantissa construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// A uniform double in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A uniform integer in `[0, n)`, by rejection (no modulo bias).
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Largest multiple of `n` that fits in u64; reject draws above it.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (integers: full width; floats:
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value in `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: u64 = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_int_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn inverted_float_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: f64 = rng.gen_range(1.0..0.5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((9_000..11_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
