//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ with its state
/// expanded from a 64-bit seed by SplitMix64.
///
/// Statistically strong, tiny, and clonable. Not stream-compatible with
/// `rand::rngs::StdRng` (ChaCha12) — all consumers in this workspace treat
/// the stream as opaque and only rely on determinism per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let s = [
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn words_have_reasonable_bit_balance() {
        let mut rng = StdRng::seed_from_u64(5);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits total; expect about half set.
        assert!((30_000..34_000).contains(&ones), "ones {ones}");
    }
}
